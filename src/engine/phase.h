// Composable per-tick phases (the pipeline behind sgl::Simulation).
//
// Section 6 presents the engine as a fixed sequence of per-tick phases;
// here each phase is a first-class TickPhase object registered with a
// Simulation. The default pipeline reproduces the paper's order
//
//   index-build -> decision-action -> deferred-index -> apply
//                -> movement -> mechanics
//
// but users can reorder, disable, or extend it with custom phases through
// SimulationBuilder. Every phase reports its own PhaseStats (time, rows
// scanned, index probes) into the simulation's PhaseStatsRegistry, which
// replaces the ad-hoc PhaseTimes of the original Engine.
#ifndef SGL_ENGINE_PHASE_H_
#define SGL_ENGINE_PHASE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "exec/sharded_effect_buffer.h"
#include "exec/thread_pool.h"
#include "util/rng.h"
#include "util/status.h"
#include "vm/vm.h"

namespace sgl {

class Simulation;

/// Canonical names of the built-in phases (stats keys and the anchors for
/// SimulationBuilder::InsertPhaseBefore/After and DisablePhase).
namespace phase_names {
inline constexpr const char kIndexBuild[] = "index-build";
inline constexpr const char kDecisionAction[] = "decision-action";
inline constexpr const char kDeferredIndex[] = "deferred-index";
inline constexpr const char kApply[] = "apply";
inline constexpr const char kMovement[] = "movement";
inline constexpr const char kMechanics[] = "mechanics";
}  // namespace phase_names

/// Counters one phase accumulates across ticks.
struct PhaseStats {
  double seconds = 0.0;       ///< total wall-clock time spent in the phase
  int64_t invocations = 0;    ///< number of ticks the phase ran
  int64_t rows_scanned = 0;   ///< environment rows the phase visited
  int64_t index_probes = 0;   ///< aggregate-index probes issued
  int64_t workers = 0;        ///< max parallel chunks one invocation used
  int64_t max_worker_ns = 0;  ///< accumulated slowest-worker wall time
};

/// Per-phase stats, keyed by phase name in first-registration (pipeline)
/// order.
class PhaseStatsRegistry {
 public:
  /// The (created-on-demand) slot for `phase`. References stay valid for
  /// the registry's lifetime (deque storage), so phases may create slots
  /// while the runner holds a reference to another one.
  PhaseStats& Slot(const std::string& phase);

  /// The slot for `phase`, or nullptr if it never ran.
  const PhaseStats* Find(const std::string& phase) const;

  const std::deque<std::pair<std::string, PhaseStats>>& stats() const {
    return stats_;
  }

  void Clear() { stats_.clear(); }

  /// Multi-line table: per phase, invocations, total seconds, ms/tick,
  /// rows scanned and index probes.
  std::string ToString() const;

 private:
  std::deque<std::pair<std::string, PhaseStats>> stats_;
};

/// Everything a phase may touch during one clock tick. The pointers stay
/// valid for the duration of the phase's Run call only.
struct TickContext {
  Simulation* sim = nullptr;         ///< owning simulation (scripts, hooks)
  EnvironmentTable* table = nullptr; ///< the environment table E
  EffectBuffer* buffer = nullptr;    ///< this tick's incremental ⊕
  const TickRandom* rnd = nullptr;   ///< the tick's random function r(u, i)
  exec::ThreadPool* pool = nullptr;  ///< worker pool; null = single thread
  int64_t tick = 0;                  ///< tick number being executed
  PhaseStats* stats = nullptr;       ///< the running phase's own slot
};

/// One stage of the per-tick pipeline. Subclass and register through
/// SimulationBuilder to observe or transform the world each tick.
class TickPhase {
 public:
  explicit TickPhase(std::string name) : name_(std::move(name)) {}
  virtual ~TickPhase() = default;

  TickPhase(const TickPhase&) = delete;
  TickPhase& operator=(const TickPhase&) = delete;

  const std::string& name() const { return name_; }

  virtual Status Run(TickContext* ctx) = 0;

 private:
  std::string name_;
};

// ------------------------------------------------------------------------
// Built-in phases. All are constructed by SimulationBuilder::Build; they
// are exposed here so custom pipelines can re-instantiate them.

/// Phase 1: rebuild the Section 5.3 aggregate-index families of every
/// script session (no-op for the naive evaluator).
class IndexBuildPhase : public TickPhase {
 public:
  IndexBuildPhase() : TickPhase(phase_names::kIndexBuild) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 2: every unit evaluates the main function of the script its
/// dispatch-attribute value selects, streaming effects into the buffer.
/// With a thread pool, rows split into contiguous chunks evaluated
/// concurrently — each chunk writes an exec::EffectShard merged back in
/// chunk order, so results are bit-identical to single-threaded runs (the
/// state-effect pattern makes decisions read only frozen pre-tick state).
/// Sessions with compiled bytecode (SimulationConfig::compiled) run
/// through the batch VM — a batch is a same-session row run within a
/// chunk — with the interpreter serving the remaining sessions.
class DecisionActionPhase : public TickPhase {
 public:
  DecisionActionPhase() : TickPhase(phase_names::kDecisionAction) {}
  Status Run(TickContext* ctx) override;

 private:
  /// Evaluate rows [lo, hi) in ascending order into `sink`, batching
  /// same-session runs through the VM where the session is compiled.
  Status RunRange(TickContext* ctx, RowId lo, RowId hi, EffectSink* sink,
                  int32_t shard);

  void EnsureExecutors(int32_t count) {
    while (static_cast<int32_t>(executors_.size()) < count) {
      executors_.push_back(std::make_unique<vm::BatchExecutor>());
    }
  }

  // Reused across ticks so shard logs keep their capacity instead of
  // reallocating on the hottest path (cleared after every merge).
  exec::ShardedEffectBuffer sharded_{0};
  /// One batch executor per ParallelFor chunk (index 0 also serves the
  /// sequential path); persistent so register files keep their capacity
  /// and hoisted prologues their values across ticks.
  std::vector<std::unique_ptr<vm::BatchExecutor>> executors_;
};

/// Phase 3: build the value-dependent indexes over deferred area-of-effect
/// actions (Section 5.4) and fold them into the buffer.
class DeferredIndexPhase : public TickPhase {
 public:
  DeferredIndexPhase() : TickPhase(phase_names::kDeferredIndex) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 4: write the combined effects back into the table and run the
/// registered apply-effects hooks (the Example 4.1 post-processing).
class ApplyPhase : public TickPhase {
 public:
  ApplyPhase() : TickPhase(phase_names::kApply) {}
  Status Run(TickContext* ctx) override;
};

/// Phase 5: units move in deterministic random order with grid collision
/// detection and very simple pathfinding.
class MovementPhase : public TickPhase {
 public:
  MovementPhase(AttrId move_x, AttrId move_y, AttrId posx, AttrId posy,
                int64_t grid_width, int64_t grid_height, double step_per_tick,
                bool collisions)
      : TickPhase(phase_names::kMovement),
        move_x_(move_x),
        move_y_(move_y),
        posx_(posx),
        posy_(posy),
        grid_width_(grid_width),
        grid_height_(grid_height),
        step_per_tick_(step_per_tick),
        collisions_(collisions) {}

  Status Run(TickContext* ctx) override;

 private:
  AttrId move_x_;
  AttrId move_y_;
  AttrId posx_;
  AttrId posy_;
  int64_t grid_width_;
  int64_t grid_height_;
  double step_per_tick_;
  bool collisions_;
};

/// Phase 6: run the registered end-of-tick hooks (death, resurrection,
/// spawning).
class MechanicsPhase : public TickPhase {
 public:
  MechanicsPhase() : TickPhase(phase_names::kMechanics) {}
  Status Run(TickContext* ctx) override;
};

}  // namespace sgl

#endif  // SGL_ENGINE_PHASE_H_
