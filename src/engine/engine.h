// Engine — the original single-script engine API, now a thin compatibility
// shim over sgl::Simulation (see simulation.h, the current public facade).
//
// Engine::Create wires one script, a borrowed GameMechanics* and an
// EngineConfig into a SimulationBuilder with the default phase pipeline;
// every member defers to the owned Simulation. New code should use
// SimulationBuilder directly: it supports multiple named scripts per
// session, owned mechanics registration, custom phases and
// Snapshot()/Restore(). Engine remains so existing callers and tests keep
// working unchanged.
#ifndef SGL_ENGINE_ENGINE_H_
#define SGL_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "engine/simulation.h"
#include "util/timer.h"

namespace sgl {

/// Engine-era alias; the configuration moved to the Simulation facade.
using EngineConfig = SimulationConfig;

class Engine {
 public:
  /// `mechanics` must outlive the engine; `script` and `table` are owned.
  static Result<std::unique_ptr<Engine>> Create(Script script,
                                                EnvironmentTable table,
                                                GameMechanics* mechanics,
                                                EngineConfig config);

  /// Advance the simulation one clock tick.
  Status Tick() { return sim_->Tick(); }

  /// Run `ticks` clock ticks.
  Status Run(int64_t ticks) { return sim_->Run(ticks); }

  const EnvironmentTable& table() const { return sim_->table(); }
  EnvironmentTable* mutable_table() { return sim_->mutable_table(); }
  int64_t tick_count() const { return sim_->tick_count(); }
  const Script& script() const { return sim_->session(0).script; }

  /// Legacy per-phase timings, re-keyed to the historical phase names
  /// ("1:index-build", ..., "6:end-of-tick"). Rebuilt from the
  /// simulation's PhaseStatsRegistry on every call.
  const PhaseTimes& phase_times() const;

  /// EXPLAIN: the physical plan chosen by the optimizer (indexed mode).
  std::string DescribePlan() const { return sim_->DescribePlan(); }

  /// The underlying facade, for callers migrating incrementally.
  Simulation& simulation() { return *sim_; }
  const Simulation& simulation() const { return *sim_; }

 private:
  explicit Engine(std::unique_ptr<Simulation> sim) : sim_(std::move(sim)) {}

  std::unique_ptr<Simulation> sim_;
  mutable PhaseTimes legacy_times_;
};

}  // namespace sgl

#endif  // SGL_ENGINE_ENGINE_H_
