// Engine — the retired single-script engine API, kept one release as a
// [[deprecated]] header-only shim over sgl::Simulation.
//
// Every caller in this repository has migrated to SimulationBuilder
// (multiple named scripts, owned mechanics, custom phases, snapshots,
// shared executors — see simulation.h); nothing in src/ includes this
// header anymore. It remains so out-of-tree code gets a deprecation
// warning with a migration note instead of a build break, and it is
// scheduled for removal in the next release. Migration is mechanical:
//
//   Engine::Create(script, table, &mechanics, config)
//     -->
//   SimulationBuilder()
//       .SetTable(std::move(table))
//       .SetConfig(config)
//       .AddScript("main", std::move(script))
//       .OnApplyEffects(...)  // or SetMechanics for owned mechanics
//       .OnEndTick(...)
//       .Build()
#ifndef SGL_ENGINE_ENGINE_H_
#define SGL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <utility>

#include "engine/simulation.h"
#include "util/timer.h"

namespace sgl {

/// Engine-era alias; the configuration moved to the Simulation facade.
using EngineConfig [[deprecated(
    "use sgl::SimulationConfig (engine/simulation.h)")]] = SimulationConfig;

class [[deprecated(
    "use sgl::SimulationBuilder / sgl::Simulation (engine/simulation.h); "
    "this shim will be removed next release")]] Engine {
 public:
  /// `mechanics` must outlive the engine; `script` and `table` are owned.
  static Result<std::unique_ptr<Engine>> Create(Script script,
                                                EnvironmentTable table,
                                                GameMechanics* mechanics,
                                                SimulationConfig config) {
    SimulationBuilder builder;
    builder.SetTable(std::move(table))
        .SetConfig(std::move(config))
        .AddScript("main", std::move(script));
    if (mechanics != nullptr) {
      // The shim keeps the borrowed-pointer contract: the caller owns the
      // mechanics and must outlive the engine.
      builder
          .OnApplyEffects([mechanics](EnvironmentTable* t,
                                      const EffectBuffer& buffer,
                                      const TickRandom& rnd) {
            return mechanics->ApplyEffects(t, buffer, rnd);
          })
          .OnEndTick([mechanics](EnvironmentTable* t, const TickRandom& rnd) {
            return mechanics->EndTick(t, rnd);
          });
    }
    SGL_ASSIGN_OR_RETURN(std::unique_ptr<Simulation> sim, builder.Build());
    return std::unique_ptr<Engine>(new Engine(std::move(sim)));
  }

  /// Advance the simulation one clock tick.
  Status Tick() { return sim_->Tick(); }

  /// Run `ticks` clock ticks.
  Status Run(int64_t ticks) { return sim_->Run(ticks); }

  const EnvironmentTable& table() const { return sim_->table(); }
  EnvironmentTable* mutable_table() { return sim_->mutable_table(); }
  int64_t tick_count() const { return sim_->tick_count(); }
  const Script& script() const { return sim_->session(0).script; }

  /// Legacy per-phase timings, re-keyed to the historical phase names
  /// ("1:index-build", ..., "6:end-of-tick"). Rebuilt from the
  /// simulation's PhaseStatsRegistry on every call.
  const PhaseTimes& phase_times() const {
    legacy_times_.Clear();
    for (const auto& [name, stats] : sim_->stats().stats()) {
      const char* legacy = LegacyPhaseName(name);
      legacy_times_.Add(legacy != nullptr ? legacy : name.c_str(),
                        stats.seconds(), stats.invocations());
    }
    return legacy_times_;
  }

  /// EXPLAIN: the physical plan chosen by the optimizer (indexed mode).
  std::string DescribePlan() const { return sim_->DescribePlan(); }

  /// The underlying facade, for callers migrating incrementally.
  Simulation& simulation() { return *sim_; }
  const Simulation& simulation() const { return *sim_; }

 private:
  explicit Engine(std::unique_ptr<Simulation> sim) : sim_(std::move(sim)) {}

  /// Historical Engine phase keys for the built-in pipeline names.
  static const char* LegacyPhaseName(const std::string& phase) {
    if (phase == phase_names::kIndexBuild) return "1:index-build";
    if (phase == phase_names::kDecisionAction) return "2:decision";
    if (phase == phase_names::kDeferredIndex) return "3:index-build-2";
    if (phase == phase_names::kApply) return "4:apply";
    if (phase == phase_names::kMovement) return "5:movement";
    if (phase == phase_names::kMechanics) return "6:end-of-tick";
    return nullptr;
  }

  std::unique_ptr<Simulation> sim_;
  mutable PhaseTimes legacy_times_;
};

}  // namespace sgl

#endif  // SGL_ENGINE_ENGINE_H_
