// The discrete simulation engine (Sections 2.2 and 6).
//
// Each clock tick runs the phases of the paper's experimental engine:
//
//   1. index build      — rebuild the aggregate index families (indexed
//                         mode only; a no-op for the naive evaluator);
//   2. decision+action  — every unit evaluates main against the immutable
//                         tick-start environment; effects stream into the
//                         EffectBuffer (the incremental ⊕). Because no
//                         effect is visible until the buffer is applied,
//                         folding the paper's separate decision and action
//                         phases into one pass is semantics-preserving;
//   3. index build 2    — value-dependent indexes: the deferred
//                         area-of-effect actions of Section 5.4 are built
//                         and folded here (e.g. "max healing in range");
//   4. apply            — combined effects are written back and the
//                         game-mechanics post-processing step (the
//                         Example 4.1 query) updates unit state;
//   5. movement         — units move in random order with grid collision
//                         detection and very simple pathfinding.
//
// The evaluator is pluggable (Section 6: "two pluggable versions of our
// aggregate query evaluator"): kNaive scans E per aggregate and per
// action; kIndexed probes the Section 5.3 index structures. Both modes
// produce bit-identical simulations.
#ifndef SGL_ENGINE_ENGINE_H_
#define SGL_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "opt/action_sink.h"
#include "opt/indexed_provider.h"
#include "sgl/analyzer.h"
#include "sgl/interpreter.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sgl {

enum class EvaluatorMode { kNaive, kIndexed };

/// Game-specific rules the engine delegates to: how combined effects
/// change unit state (Example 4.1) and what happens at end of tick
/// (death, resurrection, spawning).
class GameMechanics {
 public:
  virtual ~GameMechanics() = default;

  /// Called after ⊕: the table's effect columns hold the combined effects
  /// of the tick; update the const state columns accordingly. `buffer`
  /// additionally answers HasSet() for set-priority effects.
  virtual Status ApplyEffects(EnvironmentTable* table,
                              const EffectBuffer& buffer,
                              const TickRandom& rnd) = 0;

  /// Called after the movement phase; remove/resurrect/spawn units here.
  virtual Status EndTick(EnvironmentTable* table, const TickRandom& rnd) = 0;
};

struct EngineConfig {
  EvaluatorMode mode = EvaluatorMode::kIndexed;
  uint64_t seed = 1;

  /// Ablation switches for kIndexed mode: disable the Section 5.3
  /// aggregate indexes or the Section 5.4 action batching independently
  /// (bench_optimizer measures each contribution).
  bool index_aggregates = true;
  bool index_actions = true;

  /// Movement phase configuration. Attribute names for the per-tick
  /// movement intent; empty names disable the phase. Positions are kept
  /// on the integer grid [0, grid_width) x [0, grid_height).
  std::string move_x_attr = "movex";
  std::string move_y_attr = "movey";
  int64_t grid_width = 256;
  int64_t grid_height = 256;
  double step_per_tick = 3.0;  // the paper's _WALK_DIST_PER_TICK
  bool collisions = true;
};

class Engine {
 public:
  /// `mechanics` must outlive the engine; `script` and `table` are owned.
  static Result<std::unique_ptr<Engine>> Create(Script script,
                                                EnvironmentTable table,
                                                GameMechanics* mechanics,
                                                EngineConfig config);

  /// Advance the simulation one clock tick.
  Status Tick();

  /// Run `ticks` clock ticks.
  Status Run(int64_t ticks);

  const EnvironmentTable& table() const { return table_; }
  EnvironmentTable* mutable_table() { return &table_; }
  int64_t tick_count() const { return tick_count_; }
  const PhaseTimes& phase_times() const { return phase_times_; }
  const Script& script() const { return script_; }

  /// EXPLAIN: the physical plan chosen by the optimizer (indexed mode).
  std::string DescribePlan() const;

 private:
  Engine(Script script, EnvironmentTable table, GameMechanics* mechanics,
         EngineConfig config);

  Status MovementPhase(const TickRandom& rnd);

  Script script_;
  EnvironmentTable table_;
  GameMechanics* mechanics_;
  EngineConfig config_;
  std::unique_ptr<Interpreter> interp_;
  std::unique_ptr<IndexedAggregateProvider> provider_;  // indexed mode
  std::unique_ptr<IndexedActionSink> sink_;             // indexed mode
  EffectBuffer buffer_;
  PhaseTimes phase_times_;
  int64_t tick_count_ = 0;
  AttrId move_x_ = Schema::kInvalidAttr;
  AttrId move_y_ = Schema::kInvalidAttr;
  AttrId posx_ = Schema::kInvalidAttr;
  AttrId posy_ = Schema::kInvalidAttr;
};

}  // namespace sgl

#endif  // SGL_ENGINE_ENGINE_H_
