// SessionManager — many independent simulations served from one process
// on one shared thread pool (the src/serve/ subsystem's core).
//
// The paper scales one epic battle; a game service runs *many* worlds at
// once — match instances, shards of a lobby, A/B variants. SessionManager
// multiplexes N Simulation sessions over a single exec::ThreadPool:
// admission control caps the session count and the total unit population
// (kResourceExhausted on overflow, surfaced as serve.rejected), a
// round-robin scheduler advances every session up to `tick_budget` ticks
// per round so no session starves, and each session carries its own
// ActionInlet for externally injected unit actions with per-session
// queue-depth backpressure.
//
// Determinism carries through the whole stack: sessions tick sequentially
// on the serving thread, each against the shared pool, and pool chunking
// depends only on the pool size — so a session co-scheduled with K - 1
// neighbors is bit-identical to the same simulation run alone on an
// equally sized pool, injected actions included (tests/serve_test.cc
// enforces the full matrix).
//
// Threading contract: Open, Close, ScheduleTicks, RunRound, RunUntilIdle,
// and MetricsJson are serving-thread operations — one external thread at
// a time, the same discipline exec::ThreadPool imposes. Inject may be
// called from any thread at any time, including mid-round.
#ifndef SGL_SERVE_SESSION_MANAGER_H_
#define SGL_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/simulation.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/action_inlet.h"
#include "util/status.h"

namespace sgl {
namespace serve {

/// Capacity and scheduling knobs of a SessionManager. Every limit is
/// enforced with Status::ResourceExhausted, never by blocking.
struct SessionManagerOptions {
  /// Size of the shared worker pool every session runs on (0 =
  /// auto-detect hardware concurrency). A session admitted here resolves
  /// threads() to this pool's size regardless of its config.threads.
  int32_t threads = 1;

  /// Admission control: maximum concurrently open sessions.
  int32_t max_sessions = 8;

  /// Admission control: maximum total unit rows summed over every open
  /// session, measured at admission time.
  int64_t max_total_rows = 1000000;

  /// Scheduler fairness: maximum ticks one session advances per
  /// RunRound before the next session gets the pool.
  int64_t tick_budget = 16;

  /// Backpressure: maximum queued (undrained) injected actions per
  /// session; Inject beyond it is rejected.
  int64_t max_queued_actions = 4096;

  /// Field-by-field sanity check, same error vocabulary as
  /// SimulationConfig::Validate.
  Status Validate() const;
};

using SessionId = int64_t;

class SessionManager {
 public:
  /// Validate `options`, build the shared pool, and start empty.
  static Result<std::unique_ptr<SessionManager>> Create(
      SessionManagerOptions options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admit the session a prepared builder describes: validate its config,
  /// inject the shared executor, Build, and check capacity. Returns the
  /// new session's id, or kResourceExhausted when the session or row
  /// limit is full (the session-limit check runs first and leaves the
  /// builder untouched; any later rejection consumes it, like Build).
  Result<SessionId> Open(SimulationBuilder& builder);

  /// The session's simulation (read it, snapshot it, inspect metrics);
  /// null for an unknown id. Serving-thread only, like all mutation.
  Simulation* session(SessionId id);
  const Simulation* session(SessionId id) const;

  /// Ask the scheduler to advance the session `ticks` more ticks across
  /// the next rounds.
  Status ScheduleTicks(SessionId id, int64_t ticks);

  /// One scheduling round: every open session, in ascending id order,
  /// advances min(pending, tick_budget) ticks on the shared pool.
  /// Returns the number of ticks executed (0 = every session idle).
  Result<int64_t> RunRound();

  /// RunRound until no session has pending ticks.
  Status RunUntilIdle();

  /// Queue one injected action onto the session's inlet (thread-safe;
  /// callable while a round is running). Returns the stamped sequence
  /// number, or kResourceExhausted when the session's queue is at
  /// max_queued_actions.
  Result<int64_t> Inject(SessionId id, InjectedAction action);

  /// Graceful teardown: run the session's remaining scheduled ticks,
  /// then release it from the manager and hand the simulation (with its
  /// inlet log) back to the caller.
  Result<std::unique_ptr<Simulation>> Close(SessionId id);

  int32_t NumSessions() const;
  int64_t TotalRows() const;
  const SessionManagerOptions& options() const { return options_; }
  const std::shared_ptr<exec::ThreadPool>& executor() const { return pool_; }

  /// One flat name-sorted JSON object: the manager's own serve.* metrics
  /// plus every session's registry re-keyed session.<id>.<name>. With
  /// `deterministic_only`, sessions contribute only their deterministic
  /// metrics — the form the lockstep tests compare.
  std::string MetricsJson(bool deterministic_only = false) const;

 private:
  struct Session {
    std::unique_ptr<Simulation> sim;
    int64_t pending_ticks = 0;
  };

  explicit SessionManager(SessionManagerOptions options);

  /// Recompute the backpressure gauges from live state (mu_ held).
  void RefreshGaugesLocked();

  const SessionManagerOptions options_;
  std::shared_ptr<exec::ThreadPool> pool_;

  /// Guards sessions_ and metrics_ against Inject (any thread) racing
  /// the serving thread; the serving thread holds it for bookkeeping but
  /// never across Tick calls, so injection stays live mid-round.
  mutable std::mutex mu_;
  std::map<SessionId, Session> sessions_;
  SessionId next_id_ = 0;
  obs::MetricsRegistry metrics_;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Gauge* queued_actions_gauge_ = nullptr;
  obs::Gauge* queued_ticks_gauge_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* ticks_ = nullptr;
};

}  // namespace serve
}  // namespace sgl

#endif  // SGL_SERVE_SESSION_MANAGER_H_
