#include "serve/session_manager.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace sgl {
namespace serve {

Status SessionManagerOptions::Validate() const {
  if (threads < 0) {
    return Status::Invalid(
        "SessionManagerOptions: threads must be >= 0 (0 = auto-detect), got ",
        threads);
  }
  if (max_sessions < 1) {
    return Status::Invalid(
        "SessionManagerOptions: max_sessions must be >= 1, got ",
        max_sessions);
  }
  if (max_total_rows < 1) {
    return Status::Invalid(
        "SessionManagerOptions: max_total_rows must be >= 1, got ",
        max_total_rows);
  }
  if (tick_budget < 1) {
    return Status::Invalid(
        "SessionManagerOptions: tick_budget must be >= 1, got ", tick_budget);
  }
  if (max_queued_actions < 1) {
    return Status::Invalid(
        "SessionManagerOptions: max_queued_actions must be >= 1, got ",
        max_queued_actions);
  }
  return Status::OK();
}

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)) {
  sessions_gauge_ = metrics_.GetGauge("serve.sessions");
  queued_actions_gauge_ = metrics_.GetGauge("serve.queued_actions");
  queued_ticks_gauge_ = metrics_.GetGauge("serve.queued_ticks");
  admitted_ = metrics_.GetCounter("serve.admitted");
  rejected_ = metrics_.GetCounter("serve.rejected");
  closed_ = metrics_.GetCounter("serve.closed");
  ticks_ = metrics_.GetCounter("serve.ticks");
}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    SessionManagerOptions options) {
  SGL_RETURN_NOT_OK(options.Validate());
  if (options.threads == 0) {
    options.threads = exec::ThreadPool::HardwareThreads();
  }
  std::unique_ptr<SessionManager> manager(
      new SessionManager(std::move(options)));
  // Every session shares this one pool — even a 1-thread pool goes
  // through it, so admitted sessions always resolve the same threads().
  manager->pool_ =
      std::make_shared<exec::ThreadPool>(manager->options_.threads);
  return manager;
}

void SessionManager::RefreshGaugesLocked() {
  sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  int64_t queued_actions = 0;
  int64_t queued_ticks = 0;
  for (const auto& [id, session] : sessions_) {
    queued_actions += session.sim->inlet()->QueuedCount();
    queued_ticks += session.pending_ticks;
  }
  queued_actions_gauge_->Set(queued_actions);
  queued_ticks_gauge_->Set(queued_ticks);
}

Result<SessionId> SessionManager::Open(SimulationBuilder& builder) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int32_t>(sessions_.size()) >= options_.max_sessions) {
      rejected_->Add(1);
      return Status::ResourceExhausted(
          "SessionManager: session limit reached (", options_.max_sessions,
          " open)");
    }
  }
  SGL_RETURN_NOT_OK(builder.config().Validate());
  builder.Executor(pool_);
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Simulation> sim, builder.Build());

  std::lock_guard<std::mutex> lock(mu_);
  const int64_t new_rows = sim->table().NumRows();
  int64_t rows = new_rows;
  for (const auto& [id, session] : sessions_) {
    rows += session.sim->table().NumRows();
  }
  if (rows > options_.max_total_rows) {
    rejected_->Add(1);
    return Status::ResourceExhausted(
        "SessionManager: row limit reached (", rows - new_rows, " resident + ",
        new_rows, " requested > ", options_.max_total_rows, ")");
  }
  const SessionId id = next_id_++;
  sessions_[id].sim = std::move(sim);
  admitted_->Add(1);
  RefreshGaugesLocked();
  return id;
}

Simulation* SessionManager::session(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.sim.get();
}

const Simulation* SessionManager::session(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.sim.get();
}

Status SessionManager::ScheduleTicks(SessionId id, int64_t ticks) {
  if (ticks < 0) {
    return Status::Invalid("SessionManager: cannot schedule ", ticks,
                           " ticks");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("SessionManager: no session ", id);
  }
  it->second.pending_ticks += ticks;
  RefreshGaugesLocked();
  return Status::OK();
}

Result<int64_t> SessionManager::RunRound() {
  // Plan the round under the lock, tick outside it: Inject from other
  // threads must stay live while sessions run, and a Tick can take a
  // while. Open/Close are serving-thread calls, so the planned pointers
  // cannot be invalidated mid-round.
  struct Slice {
    SessionId id;
    Simulation* sim;
    int64_t ticks;
  };
  std::vector<Slice> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) {
      const int64_t ticks =
          std::min(session.pending_ticks, options_.tick_budget);
      if (ticks > 0) plan.push_back(Slice{id, session.sim.get(), ticks});
    }
  }
  int64_t executed = 0;
  for (const Slice& slice : plan) {
    for (int64_t i = 0; i < slice.ticks; ++i) {
      Status st = slice.sim->Tick();
      if (!st.ok()) {
        return Status(st.code(),
                      "session " + std::to_string(slice.id) + ": " +
                          st.ToString());
      }
      ++executed;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(slice.id);
    if (it != sessions_.end()) it->second.pending_ticks -= slice.ticks;
    ticks_->Add(slice.ticks);
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefreshGaugesLocked();
  return executed;
}

Status SessionManager::RunUntilIdle() {
  for (;;) {
    SGL_ASSIGN_OR_RETURN(int64_t executed, RunRound());
    if (executed == 0) return Status::OK();
  }
}

Result<int64_t> SessionManager::Inject(SessionId id, InjectedAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("SessionManager: no session ", id);
  }
  ActionInlet* inlet = it->second.sim->inlet();
  if (inlet->QueuedCount() >= options_.max_queued_actions) {
    rejected_->Add(1);
    return Status::ResourceExhausted(
        "SessionManager: session ", id, " action queue is full (",
        options_.max_queued_actions, " queued)");
  }
  const int64_t seq = inlet->Push(std::move(action));
  RefreshGaugesLocked();
  return seq;
}

Result<std::unique_ptr<Simulation>> SessionManager::Close(SessionId id) {
  // Graceful: whatever ticks the caller scheduled still run (RunRound
  // keeps the budgeted fairness), then the session leaves the manager.
  for (;;) {
    int64_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        return Status::NotFound("SessionManager: no session ", id);
      }
      pending = it->second.pending_ticks;
    }
    if (pending == 0) break;
    SGL_RETURN_NOT_OK(RunRound().status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("SessionManager: no session ", id);
  }
  std::unique_ptr<Simulation> sim = std::move(it->second.sim);
  sessions_.erase(it);
  closed_->Add(1);
  RefreshGaugesLocked();
  return sim;
}

int32_t SessionManager::NumSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int32_t>(sessions_.size());
}

int64_t SessionManager::TotalRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t rows = 0;
  for (const auto& [id, session] : sessions_) {
    rows += session.sim->table().NumRows();
  }
  return rows;
}

std::string SessionManager::MetricsJson(bool deterministic_only) const {
  std::lock_guard<std::mutex> lock(mu_);
  // One flat, name-sorted object: the serve.* metrics plus every
  // session's registry under its session.<id>. prefix. std::map keeps
  // the rendering byte-stable for identical state.
  std::map<std::string, int64_t> merged;
  for (const auto& [name, value] : metrics_.Values(deterministic_only)) {
    merged[name] = value;
  }
  for (const auto& [id, session] : sessions_) {
    const std::string prefix = "session." + std::to_string(id) + ".";
    for (const auto& [name, value] :
         session.sim->metrics().Values(deterministic_only)) {
      merged[prefix + name] = value;
    }
  }
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : merged) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::JsonEscape(name) << "\":" << value;
  }
  os << "}";
  return os.str();
}

}  // namespace serve
}  // namespace sgl
