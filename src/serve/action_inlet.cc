#include "serve/action_inlet.h"

#include <utility>

namespace sgl {
namespace serve {

int64_t ActionInlet::Push(InjectedAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  InletRecord record;
  record.seq = next_seq_++;
  record.action = std::move(action);
  queue_.push_back(std::move(record));
  return queue_.back().seq;
}

int64_t ActionInlet::QueuedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

Status ActionInlet::LoadReplay(std::vector<InletRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    return Status::Invalid(
        "ActionInlet::LoadReplay: the queue still holds ", queue_.size(),
        " undrained action(s)");
  }
  int64_t prev_tick = -1;
  int64_t prev_seq = -1;
  for (const InletRecord& record : records) {
    if (record.tick < 0) {
      return Status::Invalid(
          "ActionInlet::LoadReplay: record seq ", record.seq,
          " carries no tick (only applied-log records can replay)");
    }
    if (record.tick < prev_tick ||
        (record.tick == prev_tick && record.seq <= prev_seq)) {
      return Status::Invalid(
          "ActionInlet::LoadReplay: records out of (tick, seq) order at seq ",
          record.seq);
    }
    prev_tick = record.tick;
    prev_seq = record.seq;
  }
  for (InletRecord& record : records) queue_.push_back(std::move(record));
  return Status::OK();
}

Status ActionInlet::DrainInto(EnvironmentTable* table, int64_t tick,
                              InletDrainStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  // Eligible entries form a queue prefix: live entries always apply, and
  // replay entries are pinned in ascending tick order. Stopping at the
  // first future-pinned entry preserves sequence order for everything
  // that does apply this tick.
  while (!queue_.empty()) {
    InletRecord& front = queue_.front();
    if (front.tick != InletRecord::kUnpinned) {
      if (front.tick > tick) break;
      if (front.tick < tick) {
        return Status::Internal(
            "ActionInlet: replay record seq ", front.seq, " is pinned to tick ",
            front.tick, " but the simulation is already at tick ", tick);
      }
    }
    if (Apply(front.action, table)) {
      ++applied_;
      ++stats->applied;
    } else {
      ++dropped_;
      ++stats->dropped;
    }
    front.tick = tick;
    log_.push_back(std::move(front));
    queue_.pop_front();
  }
  return Status::OK();
}

std::vector<InletRecord> ActionInlet::Log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

int64_t ActionInlet::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

int64_t ActionInlet::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ActionInlet::Apply(const InjectedAction& action,
                        EnvironmentTable* table) {
  const RowId row = table->RowOf(action.unit_key);
  if (row < 0) return false;
  const AttrId attr = table->schema().Find(action.attr);
  if (attr == Schema::kInvalidAttr || attr == kKeyAttrId) return false;
  switch (action.op) {
    case InjectedAction::Op::kSet:
      table->Set(row, attr, action.value);
      return true;
    case InjectedAction::Op::kAdd:
      table->Set(row, attr, table->Get(row, attr) + action.value);
      return true;
  }
  return false;
}

}  // namespace serve
}  // namespace sgl
