#include "serve/action_inlet.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "storage/page.h"  // Fnv1a + LE helpers (header-only)

namespace sgl {
namespace serve {

namespace {

// Inlet log wire format, version 1 (explicit little-endian bytes):
//   "SGLINL" u16:version u32:count
//   { i64:seq i64:tick i64:key u8:op u32:attr_len attr u64:value_bits }...
//   u64:fnv1a(everything before it)
constexpr char kInletMagic[6] = {'S', 'G', 'L', 'I', 'N', 'L'};
constexpr uint16_t kInletVersion = 1;

void AppendLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

int64_t ActionInlet::Push(InjectedAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  InletRecord record;
  record.seq = next_seq_++;
  record.action = std::move(action);
  queue_.push_back(std::move(record));
  return queue_.back().seq;
}

int64_t ActionInlet::QueuedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

Status ActionInlet::Replay(std::vector<InletRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    return Status::Invalid(
        "ActionInlet::Replay: the queue still holds ", queue_.size(),
        " undrained action(s)");
  }
  int64_t prev_tick = -1;
  int64_t prev_seq = -1;
  for (const InletRecord& record : records) {
    if (record.tick < 0) {
      return Status::Invalid(
          "ActionInlet::Replay: record seq ", record.seq,
          " carries no tick (only applied-log records can replay)");
    }
    if (record.tick < prev_tick ||
        (record.tick == prev_tick && record.seq <= prev_seq)) {
      return Status::Invalid(
          "ActionInlet::Replay: records out of (tick, seq) order at seq ",
          record.seq);
    }
    prev_tick = record.tick;
    prev_seq = record.seq;
  }
  for (InletRecord& record : records) queue_.push_back(std::move(record));
  return Status::OK();
}

Status ActionInlet::SaveLog(const std::string& path) const {
  std::string bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bytes.append(kInletMagic, sizeof(kInletMagic));
    AppendLE(&bytes, kInletVersion, 2);
    AppendLE(&bytes, static_cast<uint64_t>(log_.size()), 4);
    for (const InletRecord& record : log_) {
      AppendLE(&bytes, static_cast<uint64_t>(record.seq), 8);
      AppendLE(&bytes, static_cast<uint64_t>(record.tick), 8);
      AppendLE(&bytes, static_cast<uint64_t>(record.action.unit_key), 8);
      AppendLE(&bytes, static_cast<uint64_t>(record.action.op), 1);
      AppendLE(&bytes, static_cast<uint64_t>(record.action.attr.size()), 4);
      bytes.append(record.action.attr);
      AppendLE(&bytes, storage::PackDouble(record.action.value), 8);
    }
  }
  AppendLE(&bytes,
           storage::Fnv1a(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size()),
           8);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("ActionInlet::SaveLog: cannot open ", path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out.good()) {
    return Status::Internal("ActionInlet::SaveLog: failed writing ", path);
  }
  return Status::OK();
}

Status ActionInlet::RestoreLog(const std::string& path, int64_t tick) {
  std::ifstream in(path, std::ios::binary);
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    return Status::Invalid(
        "ActionInlet::RestoreLog: the queue still holds ", queue_.size(),
        " undrained action(s)");
  }
  log_.clear();
  if (!in.is_open()) return Status::OK();  // no saved log: a fresh inlet
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto read = [&bytes](size_t* pos, int n, uint64_t* out) -> bool {
    if (*pos + static_cast<size_t>(n) > bytes.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[*pos + i]))
           << (8 * i);
    }
    *pos += static_cast<size_t>(n);
    *out = v;
    return true;
  };
  if (bytes.size() < sizeof(kInletMagic) + 2 + 4 + 8 ||
      std::memcmp(bytes.data(), kInletMagic, sizeof(kInletMagic)) != 0) {
    return Status::Invalid("ActionInlet::RestoreLog: ", path,
                           " is not an inlet log");
  }
  size_t pos = bytes.size() - 8;
  uint64_t checksum = 0;
  (void)read(&pos, 8, &checksum);
  if (storage::Fnv1a(reinterpret_cast<const uint8_t*>(bytes.data()),
                     bytes.size() - 8) != checksum) {
    return Status::Invalid("ActionInlet::RestoreLog: ", path,
                           " failed its checksum (corrupt log)");
  }
  pos = sizeof(kInletMagic);
  uint64_t version = 0;
  (void)read(&pos, 2, &version);
  if (version != kInletVersion) {
    return Status::Invalid("ActionInlet::RestoreLog: unsupported version ",
                           version);
  }
  uint64_t count = 0;
  (void)read(&pos, 4, &count);
  const size_t body_end = bytes.size() - 8;
  std::vector<InletRecord> records;
  records.reserve(count);
  int64_t max_seq = -1;
  for (uint64_t i = 0; i < count; ++i) {
    InletRecord record;
    uint64_t v = 0;
    if (!read(&pos, 8, &v)) {
      return Status::Invalid("ActionInlet::RestoreLog: truncated record ", i);
    }
    record.seq = static_cast<int64_t>(v);
    if (!read(&pos, 8, &v)) {
      return Status::Invalid("ActionInlet::RestoreLog: truncated record ", i);
    }
    record.tick = static_cast<int64_t>(v);
    if (!read(&pos, 8, &v)) {
      return Status::Invalid("ActionInlet::RestoreLog: truncated record ", i);
    }
    record.action.unit_key = static_cast<int64_t>(v);
    uint64_t op = 0;
    if (!read(&pos, 1, &op) || op > 1) {
      return Status::Invalid("ActionInlet::RestoreLog: bad op in record ", i);
    }
    record.action.op = static_cast<InjectedAction::Op>(op);
    uint64_t attr_len = 0;
    if (!read(&pos, 4, &attr_len) || pos + attr_len > body_end) {
      return Status::Invalid("ActionInlet::RestoreLog: truncated record ", i);
    }
    record.action.attr.assign(bytes, pos, attr_len);
    pos += attr_len;
    if (!read(&pos, 8, &v)) {
      return Status::Invalid("ActionInlet::RestoreLog: truncated record ", i);
    }
    record.action.value = storage::UnpackDouble(v);
    max_seq = std::max(max_seq, record.seq);
    records.push_back(std::move(record));
  }
  if (pos != body_end) {
    return Status::Invalid("ActionInlet::RestoreLog: ", path, " has ",
                           body_end - pos, " trailing byte(s)");
  }
  // Records already applied before the restored tick are history; those
  // at or after it re-queue (still pinned) so the re-executed ticks see
  // exactly the actions the original run did.
  for (InletRecord& record : records) {
    if (record.tick < tick) {
      log_.push_back(std::move(record));
    } else {
      queue_.push_back(std::move(record));
    }
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  return Status::OK();
}

Status ActionInlet::DrainInto(EnvironmentTable* table, int64_t tick,
                              InletDrainStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  // Eligible entries form a queue prefix: live entries always apply, and
  // replay entries are pinned in ascending tick order. Stopping at the
  // first future-pinned entry preserves sequence order for everything
  // that does apply this tick.
  while (!queue_.empty()) {
    InletRecord& front = queue_.front();
    if (front.tick != InletRecord::kUnpinned) {
      if (front.tick > tick) break;
      if (front.tick < tick) {
        return Status::Internal(
            "ActionInlet: replay record seq ", front.seq, " is pinned to tick ",
            front.tick, " but the simulation is already at tick ", tick);
      }
    }
    if (Apply(front.action, table)) {
      ++applied_;
      ++stats->applied;
    } else {
      ++dropped_;
      ++stats->dropped;
    }
    front.tick = tick;
    log_.push_back(std::move(front));
    queue_.pop_front();
  }
  return Status::OK();
}

std::vector<InletRecord> ActionInlet::Log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

int64_t ActionInlet::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

int64_t ActionInlet::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool ActionInlet::Apply(const InjectedAction& action,
                        EnvironmentTable* table) {
  const RowId row = table->RowOf(action.unit_key);
  if (row < 0) return false;
  const AttrId attr = table->schema().Find(action.attr);
  if (attr == Schema::kInvalidAttr || attr == kKeyAttrId) return false;
  switch (action.op) {
    case InjectedAction::Op::kSet:
      table->Set(row, attr, action.value);
      return true;
    case InjectedAction::Op::kAdd:
      table->Set(row, attr, table->Get(row, attr) + action.value);
      return true;
  }
  return false;
}

}  // namespace serve
}  // namespace sgl
