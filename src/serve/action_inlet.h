// ActionInlet — externally injected unit actions as a deterministic
// effect source (the src/serve/ subsystem).
//
// A live service accepts commands for individual units ("move this
// knight", "freeze that trader") from outside the simulation loop. The
// state-effect pattern has no room for asynchronous mutation mid-tick,
// so the inlet turns external input into a deterministic input stream:
// producers Push actions at any time (thread-safe), each action is
// stamped with a monotonically increasing sequence number, and the
// engine drains the queue once per tick — at tick start, before any
// phase runs — applying the queued actions in sequence order.
//
// Determinism and replay: every applied action is recorded in the inlet
// log together with the tick at whose start it was applied. The pair
// (initial world, inlet log) fully determines the run — Replay feeds a
// recorded log back into a fresh simulation, where each record applies
// at exactly its recorded tick, reproducing the live run bit for bit
// (tests/serve_test.cc enforces it). Simulation::Checkpoint persists
// the log next to the world (SaveLog) and RestoreFrom reloads it
// (RestoreLog), so a restored run replays its still-pending actions.
//
// Application semantics are deliberately small: an action writes one
// attribute of one unit, either overwriting (kSet) or adding (kAdd).
// Actions naming a unit key or attribute that no longer exists are
// dropped and counted, never errors — over a service boundary a stale
// command (the unit died last tick) is ordinary traffic, and whether it
// applies is a pure function of the table state, so drops replay
// identically too.
#ifndef SGL_SERVE_ACTION_INLET_H_
#define SGL_SERVE_ACTION_INLET_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "env/table.h"
#include "util/status.h"

namespace sgl {
namespace serve {

/// One externally injected unit action: write `value` into attribute
/// `attr` of the unit holding `unit_key`.
struct InjectedAction {
  enum class Op : uint8_t {
    kSet = 0,  ///< overwrite the attribute with `value`
    kAdd = 1,  ///< add `value` to the attribute
  };

  int64_t unit_key = 0;
  std::string attr;  ///< schema attribute name (never the key)
  Op op = Op::kSet;
  double value = 0.0;
};

/// One inlet log entry: the action, the sequence number stamped on Push,
/// and the tick at whose start it was applied (or is pinned to apply,
/// for replay entries; kUnpinned while live in the queue).
struct InletRecord {
  static constexpr int64_t kUnpinned = -1;

  int64_t seq = 0;
  int64_t tick = kUnpinned;
  InjectedAction action;
};

/// What one DrainInto pass did, folded into the owning simulation's
/// metrics registry by the engine (the inlet itself stays registry-free:
/// Push is cross-thread, registry counters are not).
struct InletDrainStats {
  int64_t applied = 0;
  int64_t dropped = 0;  ///< unknown key, unknown attribute, or key attr
};

class ActionInlet {
 public:
  ActionInlet() = default;
  ActionInlet(const ActionInlet&) = delete;
  ActionInlet& operator=(const ActionInlet&) = delete;

  /// Queue an action (thread-safe; callable while a tick is running).
  /// Returns the stamped sequence number. The action applies at the
  /// start of the next tick whose drain observes it.
  int64_t Push(InjectedAction action);

  /// Current queue depth (thread-safe) — the backpressure signal the
  /// session layer surfaces as serve.queued_actions.
  int64_t QueuedCount() const;

  /// Replace the queue with a recorded log for replay. Each record keeps
  /// its recorded tick and applies exactly at that tick's start; records
  /// must be in ascending (tick, seq) order with no tick earlier than
  /// the simulation's next tick. Live Pushes may not be mixed into a
  /// replaying inlet until the loaded log has fully drained.
  Status Replay(std::vector<InletRecord> records);

  [[deprecated("use Replay")]] Status LoadReplay(
      std::vector<InletRecord> records) {
    return Replay(std::move(records));
  }

  /// Persist the applied-action log to `path` (binary, little-endian,
  /// checksummed). An empty log still writes a valid file.
  Status SaveLog(const std::string& path) const;

  /// Load a log written by SaveLog into a simulation restored to state
  /// `tick`: records applied before `tick` become history (the log), and
  /// records at or after it re-queue, pinned, to apply again as the
  /// restored run re-executes those ticks. A missing file is OK (the
  /// inlet just resets). The queue must be empty.
  Status RestoreLog(const std::string& path, int64_t tick);

  /// Engine-side, called once at the start of tick `tick`: apply every
  /// queued unpinned action plus every replay record pinned to `tick`,
  /// in sequence order, and append them to the log. A replay record
  /// pinned to an earlier tick is an Internal error (the log and the
  /// simulation disagree about time).
  Status DrainInto(EnvironmentTable* table, int64_t tick,
                   InletDrainStats* stats);

  /// The applied-action log in application (sequence) order; feed it to
  /// Replay on a fresh simulation to reproduce this run.
  std::vector<InletRecord> Log() const;

  /// Total actions ever applied / dropped (thread-safe).
  int64_t applied() const;
  int64_t dropped() const;

 private:
  /// Apply one action to the table; returns false for a drop (unknown
  /// key, unknown attribute, or an attempt to write the key attribute).
  static bool Apply(const InjectedAction& action, EnvironmentTable* table);

  mutable std::mutex mu_;
  int64_t next_seq_ = 0;
  std::deque<InletRecord> queue_;
  std::vector<InletRecord> log_;
  int64_t applied_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace serve
}  // namespace sgl

#endif  // SGL_SERVE_ACTION_INLET_H_
