// Register-style bytecode for compiled SGL decision evaluation.
//
// The compiler (vm/compiler.h) lowers an analyzed, normalized Script's
// function bodies — main with every user function call inlined (the
// analyzer guarantees the call graph is acyclic) — into one straight-line
// program of batch instructions. There are no jumps: `if` statements
// compile to lane masks (predication), so a batch of units executes every
// instruction exactly once with one dispatch per opcode per batch, the
// lowering the paper's "compile the query, don't interpret the script"
// direction (ROADMAP item 1) calls for.
//
// Register model
//   * f64 lane-vector registers, pure SSA: each register is written by
//     exactly one instruction. Vec2 values occupy two registers, aggregate
//     row results k consecutive registers — so field accesses, tuple
//     construction, and let-aliasing cost zero instructions.
//   * uint8 mask registers predicate control flow and error checks.
//     Mask 0 is the all-active batch mask.
//   * Constants (literals, folded const-arithmetic) load once in a
//     hoisted prologue — unit- and tick-invariant, annotated by the
//     disassembler.
//
// Error semantics: instructions that can fail at runtime (div/mod by
// zero, sqrt of negative) compute branch-free across all lanes and flag
// errors only under their error mask (the exact lanes on which the
// interpreter would evaluate the operand, including refined short-circuit
// masks inside and/or conditions). Any flagged lane aborts the batch and
// the executor re-runs those units through the interpreter, which then
// reports the identical per-unit error (vm/vm.h).
#ifndef SGL_VM_BYTECODE_H_
#define SGL_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "env/value.h"
#include "obs/metrics.h"
#include "sgl/analyzer.h"

namespace sgl {
namespace vm {

enum class Op : uint8_t {
  // ---- batch opcodes: one tight loop over all lanes ----
  kConst,     // dst[i] = consts[aux]                  (hoisted prologue)
  kLoadAttr,  // dst[i] = table(lo + i, aux)           (aux 0 = unit key)
  kAdd,       // dst[i] = a[i] + b[i]
  kSub,       // dst[i] = a[i] - b[i]
  kMul,       // dst[i] = a[i] * b[i]
  kDiv,       // dst[i] = a[i] / b[i]; flags b[i]==0 under mask
  kMod,       // dst[i] = fmod(a[i], b[i]); flags b[i]==0 under mask
  kNeg,       // dst[i] = -a[i]
  kAbs,       // dst[i] = fabs(a[i])
  kMin2,      // dst[i] = min(a[i], b[i])
  kMax2,      // dst[i] = max(a[i], b[i])
  kSqrt,      // dst[i] = sqrt(a[i]); flags a[i]<0 under mask
  kFloor,     // dst[i] = floor(a[i])
  kCeil,      // dst[i] = ceil(a[i])
  kClamp,     // dst[i] = clamp(a[i], b[i], c[i])
  kCmp,       // mask dst[i] = cmp(a[i], b[i])         (cmp field)
  kMaskAnd,   // mask dst[i] = mask a[i] & mask b[i]
  kMaskAndNot,// mask dst[i] = mask a[i] & !mask b[i]
  kMaskOr,    // mask dst[i] = mask a[i] | mask b[i]
  kMaskNot,   // mask dst[i] = !mask a[i]
  // ---- scalar opcodes: per-lane loop, active lanes only ----
  kRandom,    // dst[i] = DrawBounded(key[i], int64(a[i]), kRandomRange)
  kAgg,       // regs[dst..dst+b) = aggregate aux(args...), zero if inactive
  kPerform,   // queue pending perform of PerformSig aux with args regs
};

const char* OpName(Op op);

/// True for opcodes the VM cannot vectorize (per-lane callbacks into the
/// aggregate provider / effect sink / RNG).
bool OpIsScalar(Op op);

/// One instruction. Operand meaning varies by opcode (see Op comments):
/// dst/a/b/c index f64 registers for value ops and mask registers for
/// mask ops; `mask` predicates scalar ops and error checks; `aux` holds
/// the constant-pool / attribute / aggregate / perform-signature index.
struct Instr {
  Op op;
  CompareOp cmp = CompareOp::kEq;  // kCmp only
  int32_t dst = -1;
  int32_t a = -1;
  int32_t b = -1;
  int32_t c = -1;
  int32_t mask = 0;
  int32_t aux = -1;
  int32_t line = 0;                // source line (error context)
  std::vector<int32_t> args;       // kAgg / kPerform argument registers
};

/// Compile-time shape of one perform argument, used at flush time to
/// re-box register lanes into the interpreter Values the action sink and
/// the naive ExecAction expect.
struct PerformArg {
  ValueKind kind = ValueKind::kScalar;
  int32_t nregs = 1;
  std::shared_ptr<const RowLayout> layout;  // kRow only
};

/// One distinct `perform Action(...)` site in the program.
struct PerformSig {
  int32_t action_index = -1;
  std::vector<PerformArg> args;  // scalar args (after the unit tuple)
};

/// One select item of a vectorized aggregate scan: its accumulator kind
/// and the register holding the per-row term (-1 for count(*), whose
/// accumulator needs no term).
struct AggScanItem {
  AggFunc func = AggFunc::kCount;
  int32_t term_reg = -1;
};

/// A compiled columnar scan for one aggregate declaration: the kAgg
/// opcode's fast path when no aggregate provider is installed (pure naive
/// evaluation). The where condition and every item term lower to batch
/// instructions executed over sub-batches of E rows — one dispatch per
/// opcode per 256 rows instead of an AST walk per row — while the
/// accumulators (count, sums, sums of squares, mins, maxs) update
/// sequentially in row order, reproducing the interpreter's float
/// accumulation bit-exactly.
///
/// Register model mirrors CompiledProgram, with two extra uniform
/// classes written by the executor rather than by instructions: the
/// probe's scalar arguments (`arg_regs`) and the probing unit's
/// attributes (`u_attr_regs`), both lane-uniform per probe. kLoadAttr
/// here loads the *scanned* row's column (aux 0 = unit key).
///
/// Row-returning aggregates (nearest/argmin/argmax) vectorize too: the
/// per-row metric (squared distance for nearest, the term for argmin,
/// its negation for argmax) computes in lanes, and the best row resolves
/// sequentially in row order with the interpreter's exact key tiebreak.
/// Declarations the conservative compiler declines stay interpreted
/// probes; the owning CompiledProgram records the reason in agg_notes.
struct AggScanProgram {
  int32_t agg_index = -1;  // names for the disassembler
  int32_t num_regs = 0;
  int32_t num_masks = 1;   // mask 0 = valid rows of the sub-batch
  int32_t num_hoisted = 0;
  int32_t nout = 1;        // result width the kAgg site expects
  std::vector<double> consts;
  std::vector<Instr> code;
  std::vector<int32_t> arg_regs;  // scalar args, probe-uniform broadcasts
  std::vector<std::pair<AttrId, int32_t>> u_attr_regs;  // probing-unit attrs
  int32_t where_mask = 0;  // match mask after the body runs
  std::vector<AggScanItem> items;      // divisible aggregates only
  AggFunc row_func = AggFunc::kCount;  // row-returning mode when set
  int32_t metric_reg = -1;             // row mode: per-row metric lanes
  std::shared_ptr<const RowLayout> layout;  // row / multi-item results
};

/// One set item of a vectorized action update: the target attribute, its
/// combine op, and the registers holding the per-row effect value (and,
/// for set-with-priority, the priority).
struct ActionScanSet {
  AttrId attr = 0;
  SetOp op = SetOp::kAdd;
  int32_t value_reg = -1;
  int32_t priority_reg = -1;  // kSetPriority only
};

/// One `update e where ... set ...` block of an action scan.
struct ActionScanUpdate {
  int32_t where_mask = 0;
  std::vector<ActionScanSet> sets;
};

/// A compiled columnar scan for one action declaration: the perform
/// flush's fast path when no action sink is installed (naive effect
/// application). Update conditions and effect values lower to batch
/// instructions over E rows — random() stays legal here, drawn per
/// scanned row exactly as the interpreter does — and the matched
/// effects accumulate in the interpreter's order (update-major, then
/// row-major, then set-item order). Register model and uniforms mirror
/// AggScanProgram.
struct ActionScanProgram {
  int32_t action_index = -1;
  int32_t num_regs = 0;
  int32_t num_masks = 1;
  int32_t num_hoisted = 0;
  std::vector<double> consts;
  std::vector<Instr> code;
  std::vector<int32_t> arg_regs;
  std::vector<std::pair<AttrId, int32_t>> u_attr_regs;
  std::vector<ActionScanUpdate> updates;
};

/// A compiled decision program for one script session. Immutable after
/// compilation except for the execution counters, which many batch
/// executors (one per ParallelFor chunk) bump concurrently on their own
/// per-shard counter slots.
struct CompiledProgram {
  const Script* script = nullptr;  // names for the disassembler; not owned
  int32_t num_regs = 0;
  int32_t num_masks = 1;           // mask 0 = all-active
  int32_t num_hoisted = 0;         // leading kConst prologue instructions
  int32_t num_batch_ops = 0;       // static opcode counts (Explain)
  int32_t num_scalar_ops = 0;
  std::vector<double> consts;
  std::vector<Instr> code;
  std::vector<PerformSig> performs;

  /// Vectorized aggregate scans, one slot per aggregate declaration of the
  /// script. A null slot means kAgg probes that declaration through the
  /// interpreter; agg_notes[i] records why.
  std::vector<std::unique_ptr<AggScanProgram>> agg_scans;
  std::vector<std::string> agg_notes;

  /// Vectorized action scans, one slot per action declaration. A null
  /// slot means the perform flush executes that action through the
  /// interpreter; action_notes[i] records why.
  std::vector<std::unique_ptr<ActionScanProgram>> action_scans;
  std::vector<std::string> action_notes;

  // Execution counter handles (per-shard padded; totals only). A "batch
  // dispatch" is one batch opcode executed over one batch (decision
  // batches and scan sub-batches both count); a "scalar lane-op" is one
  // active lane of a scalar opcode; an "agg scan probe" is one aggregate
  // evaluated via its vectorized scan; an "action scan exec" is one
  // performed action applied via its vectorized scan; a fallback is one
  // batch re-run through the interpreter after a flagged lane error.
  // CompileProgram binds them to `own_metrics`; SimulationBuilder rebinds
  // into the simulation's registry before any tick.
  obs::Counter* batches = nullptr;
  obs::Counter* batch_dispatches = nullptr;
  obs::Counter* scalar_lane_ops = nullptr;
  obs::Counter* agg_scan_probes = nullptr;
  obs::Counter* action_scan_execs = nullptr;
  obs::Counter* interp_fallbacks = nullptr;
  std::unique_ptr<obs::MetricsRegistry> own_metrics;

  /// Rebind the execution counters into `registry` under `prefix` (e.g.
  /// "script.battle.vm."). Batch/dispatch/fallback counts depend on where
  /// chunk boundaries fall and are flagged execution-dependent; lane-op,
  /// scan-probe, and action-exec counts tally per-unit work and are
  /// deterministic for any thread count. `extra_flags` is OR-ed into
  /// every counter.
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix,
                   uint32_t extra_flags);

  /// Annotated listing: one line per instruction, hoisted constants
  /// marked, aggregate/action/attribute operands named via `script`.
  std::string Disassemble() const;
};

}  // namespace vm
}  // namespace sgl

#endif  // SGL_VM_BYTECODE_H_
