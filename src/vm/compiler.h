// Bytecode compiler: analyzed SGL -> vm::CompiledProgram.
//
// CompileProgram lowers a Script's decision logic (main with every user
// function inlined) to the straight-line predicated bytecode of
// vm/bytecode.h, performing at compile time what the interpreter redoes
// per unit per tick:
//   * constant folding over literals and const-arithmetic, with the
//     folded values interned into a hoisted unit-invariant prologue;
//   * name resolution: let-bindings and scalar parameters become register
//     aliases (zero instructions), field accesses on vectors and
//     aggregate rows become compile-time register selection;
//   * common-subexpression elimination over unit-attribute loads (one
//     kLoadAttr per attribute per program, shared across inlined calls);
//   * control-flow lowering of if/and/or to lane masks, including the
//     refined error masks that keep runtime error detection bit-exact
//     with the interpreter's short-circuit evaluation order.
//
// Compilation is conservative: any construct whose batch execution could
// diverge from the interpreter (static type errors the interpreter would
// only hit at runtime, reads of conditionally-bound locals) fails with
// StatusCode::kUnimplemented and a human-readable reason. The session
// then simply keeps interpreting — the reason string is surfaced by
// Simulation::Explain()'s Bytecode block.
#ifndef SGL_VM_COMPILER_H_
#define SGL_VM_COMPILER_H_

#include <memory>

#include "sgl/analyzer.h"
#include "util/status.h"
#include "vm/bytecode.h"

namespace sgl {
namespace vm {

/// Compile `script`'s decision phase to bytecode. The script must outlive
/// the returned program (the program keeps a pointer for disassembly).
Result<std::unique_ptr<CompiledProgram>> CompileProgram(const Script& script);

}  // namespace vm
}  // namespace sgl

#endif  // SGL_VM_COMPILER_H_
