// Batch-vectorized decision VM.
//
// A BatchExecutor runs a CompiledProgram (vm/bytecode.h) over a contiguous
// row range of the environment table, in sub-batches of up to
// kMaxBatchLanes units. Batch opcodes execute as one dispatch per opcode
// per sub-batch — a tight lane loop over columnar register storage, the
// form compilers auto-vectorize — while the three scalar opcodes (random
// draws, aggregate probes through AggregateProvider::Eval, and effect
// emission) iterate active lanes only.
//
// Bit-exactness contract with the interpreter:
//   * Performs are queued during evaluation and flushed after the batch in
//     (unit, program-order) order — exactly the interpreter's unit-at-a-
//     time effect-log order. A flush error returns immediately: earlier
//     units' effects are already emitted, as they would be under the
//     interpreter.
//   * Instructions that can fail (div/mod by zero, sqrt of negative) run
//     branch-free over all lanes and raise a flag only under their error
//     mask — the exact lanes on which the interpreter's evaluation order
//     (including and/or short-circuiting) would reach the operand. Any
//     flagged lane aborts the batch before any effect is emitted and the
//     whole sub-batch re-runs per-unit through Interpreter::RunUnit, which
//     reproduces the identical per-unit error and partial effect log.
//
// One executor serves one ParallelFor chunk (a batch = a chunk), so all
// scratch state is private and the only shared writes — the program's
// execution counters and the tracer's event buffers — land in the
// executor's own per-shard slots.
#ifndef SGL_VM_VM_H_
#define SGL_VM_VM_H_

#include <cstdint>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"
#include "env/value.h"
#include "obs/trace.h"
#include "sgl/interpreter.h"
#include "util/rng.h"
#include "util/status.h"
#include "vm/bytecode.h"

namespace sgl {
namespace vm {

/// Maximum units per sub-batch: small enough that the live register file
/// stays cache-resident, large enough to amortize dispatch.
inline constexpr int32_t kMaxBatchLanes = 256;

class BatchExecutor {
 public:
  /// Execute `prog` for rows [lo, hi) of `table`, streaming effects into
  /// `sink`. `interp` is the owning session's interpreter — its aggregate
  /// provider / action sink plugins serve the scalar opcodes, and it is
  /// the per-unit fallback after a flagged lane error. `shard` keys the
  /// plugins' per-shard bookkeeping (the caller's ParallelFor chunk).
  Status Run(const CompiledProgram& prog, const Interpreter& interp,
             const EnvironmentTable& table, RowId lo, RowId hi,
             const TickRandom& rnd, EffectSink* sink, int32_t shard);

  /// Emit "vm.bail" instants (interpreter fallbacks) to `tracer` (null =
  /// off; the engine wires this only when tracing is enabled).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// One queued `perform`: flush re-boxes its argument Values (stored flat
  /// in pending_args_) and routes them through the action sink.
  struct Pending {
    int32_t lane;
    int32_t sig;
    int32_t arg_offset;
  };

  Status RunBatch(const CompiledProgram& prog, const Interpreter& interp,
                  const EnvironmentTable& table, RowId lo, int32_t n,
                  const TickRandom& rnd, EffectSink* sink, int32_t shard);

  /// Vectorized aggregate probe: runs `scan` over every row of `table`
  /// for probing unit `u_row`, writing the finalized values (exactly the
  /// interpreter's accumulation, best-row tracking, and finalization
  /// arithmetic) into `out[0..nout)`. Returns false if any lane flagged
  /// a runtime error — the caller then falls back to the interpreter for
  /// the whole batch.
  bool RunAggScan(const AggScanProgram& scan, const EnvironmentTable& table,
                  RowId u_row, const double* args, double* out);

  /// Vectorized action execution: runs `scan` (every update's condition
  /// and effect values) over every row of `table` for performing unit
  /// `u_row`, buffering matched effects and applying them to `sink` in
  /// the interpreter's order (update-major, then row-major, then
  /// set-item order). Applies nothing and returns false if any lane
  /// flagged a runtime error — the caller then falls back to
  /// Interpreter::ExecAction, which reproduces the identical error and
  /// partial effect log.
  bool RunActionScan(const ActionScanProgram& scan,
                     const EnvironmentTable& table, RowId u_row,
                     const TickRandom& rnd, const double* args,
                     EffectSink* sink);

  double* Reg(int32_t r) {
    return regs_.data() + static_cast<size_t>(r) * kMaxBatchLanes;
  }
  uint8_t* MaskRow(int32_t m) {
    return masks_.data() + static_cast<size_t>(m) * kMaxBatchLanes;
  }

  // Register file and mask file, reg-major (each register is a contiguous
  // lane vector). Sized for `prepared_`; the hoisted kConst prologue is
  // re-run only when the program changes (its registers are written by no
  // other instruction and are lane-uniform, so they survive across
  // batches and ticks — the unit-invariant hoisting payoff).
  const CompiledProgram* prepared_ = nullptr;
  std::vector<double> regs_;
  std::vector<uint8_t> masks_;

  /// Per-aggregate scan register files (indexed like agg_scans). Lazily
  /// prepared: the hoisted kConst prologue is written on first use and —
  /// like the decision program's — survives across probes and ticks;
  /// only the probe-uniform registers rewrite per probe.
  struct ScanState {
    bool prepared = false;
    std::vector<double> regs;
    std::vector<uint8_t> masks;
  };
  std::vector<ScanState> scan_states_;
  std::vector<ScanState> action_states_;  // indexed like action_scans
  std::vector<double> scan_args_;  // scratch: one probe's scalar args
  std::vector<double> scan_out_;   // scratch: one probe's item values
  std::vector<double> acc_sums_;   // row-order accumulators (bit-exact)
  std::vector<double> acc_sumsq_;
  std::vector<double> acc_mins_;
  std::vector<double> acc_maxs_;

  /// One matched effect of an action scan, buffered so the whole exec
  /// applies only if no lane errored (else the interpreter fallback must
  /// start from an untouched sink).
  struct PendingEffect {
    RowId row;
    AttrId attr;
    SetOp op;
    double value;
    double priority;
  };
  std::vector<std::vector<PendingEffect>> effect_bufs_;  // per update

  std::vector<Pending> pending_;
  std::vector<Value> pending_args_;
  std::vector<Value> call_args_;  // scratch for plugin calls

  obs::Tracer* tracer_ = nullptr;

  // Locally accumulated counters, flushed to the program's per-shard
  // counter slots once per Run call.
  int64_t n_batches_ = 0;
  int64_t n_dispatch_ = 0;
  int64_t n_scalar_ = 0;
  int64_t n_scan_probes_ = 0;
  int64_t n_action_execs_ = 0;
  int64_t n_fallback_ = 0;
};

}  // namespace vm
}  // namespace sgl

#endif  // SGL_VM_VM_H_
