#include "vm/vm.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "sgl/builtins.h"

namespace sgl {
namespace vm {

namespace {

/// Queue the perform-site arguments of one lane, re-boxed into the Values
/// the action sink / naive ExecAction expect. `arg_regs` walks the
/// instruction's flattened register list.
void BoxPerformArgs(const PerformSig& sig, const std::vector<int32_t>& regs,
                    const std::vector<double>& file, int32_t lane,
                    std::vector<Value>* out) {
  size_t cursor = 0;
  for (const PerformArg& pa : sig.args) {
    const auto lane_of = [&](size_t k) {
      return file[static_cast<size_t>(regs[cursor + k]) * kMaxBatchLanes +
                  lane];
    };
    switch (pa.kind) {
      case ValueKind::kScalar:
        out->push_back(Value(lane_of(0)));
        break;
      case ValueKind::kVec2:
        out->push_back(Value(Vec2{lane_of(0), lane_of(1)}));
        break;
      case ValueKind::kRow: {
        auto row = std::make_shared<RowValue>();
        row->layout = pa.layout;
        row->vals.reserve(pa.nregs);
        for (int32_t k = 0; k < pa.nregs; ++k) row->vals.push_back(lane_of(k));
        out->push_back(Value(std::shared_ptr<const RowValue>(std::move(row))));
        break;
      }
    }
    cursor += pa.nregs;
  }
}

}  // namespace

Status BatchExecutor::Run(const CompiledProgram& prog,
                          const Interpreter& interp,
                          const EnvironmentTable& table, RowId lo, RowId hi,
                          const TickRandom& rnd, EffectSink* sink,
                          int32_t shard) {
  if (prepared_ != &prog) {
    regs_.assign(static_cast<size_t>(prog.num_regs) * kMaxBatchLanes, 0.0);
    masks_.assign(static_cast<size_t>(prog.num_masks) * kMaxBatchLanes, 0);
    // Hoisted prologue: lane-uniform constants, written by no body
    // instruction, so they persist across batches and ticks.
    for (int32_t pc = 0; pc < prog.num_hoisted; ++pc) {
      const Instr& in = prog.code[pc];
      double* d = Reg(in.dst);
      std::fill(d, d + kMaxBatchLanes, prog.consts[in.aux]);
    }
    scan_states_.assign(prog.agg_scans.size(), ScanState{});
    action_states_.assign(prog.action_scans.size(), ScanState{});
    prepared_ = &prog;
  }

  Status st = Status::OK();
  for (RowId b = lo; b < hi && st.ok(); b += kMaxBatchLanes) {
    const int32_t n = std::min<RowId>(kMaxBatchLanes, hi - b);
    st = RunBatch(prog, interp, table, b, n, rnd, sink, shard);
  }

  if (n_batches_ != 0) {
    prog.batches->Add(n_batches_, shard);
    prog.batch_dispatches->Add(n_dispatch_, shard);
    prog.scalar_lane_ops->Add(n_scalar_, shard);
    prog.agg_scan_probes->Add(n_scan_probes_, shard);
    prog.action_scan_execs->Add(n_action_execs_, shard);
    prog.interp_fallbacks->Add(n_fallback_, shard);
    n_batches_ = n_dispatch_ = n_scalar_ = n_scan_probes_ = 0;
    n_action_execs_ = n_fallback_ = 0;
  }
  return st;
}

Status BatchExecutor::RunBatch(const CompiledProgram& prog,
                               const Interpreter& interp,
                               const EnvironmentTable& table, RowId lo,
                               int32_t n, const TickRandom& rnd,
                               EffectSink* sink, int32_t shard) {
  ++n_batches_;
  pending_.clear();
  pending_args_.clear();

  uint8_t* m0 = MaskRow(0);
  std::fill(m0, m0 + kMaxBatchLanes, uint8_t{0});
  std::fill(m0, m0 + n, uint8_t{1});

  const int64_t* keys = table.Keys().data() + lo;
  AggregateProvider* provider = interp.aggregate_provider();
  bool any_err = false;

  for (size_t pc = prog.num_hoisted; pc < prog.code.size() && !any_err;
       ++pc) {
    const Instr& in = prog.code[pc];
    switch (in.op) {
      case Op::kConst: {  // only reachable if a body ever carries one
        double* d = Reg(in.dst);
        std::fill(d, d + n, prog.consts[in.aux]);
        ++n_dispatch_;
        break;
      }
      case Op::kLoadAttr: {
        double* d = Reg(in.dst);
        if (in.aux == kKeyAttrId) {
          for (int32_t i = 0; i < n; ++i) {
            d[i] = static_cast<double>(keys[i]);
          }
        } else {
          const double* col = table.Column(in.aux).data() + lo;
          std::memcpy(d, col, sizeof(double) * n);
        }
        ++n_dispatch_;
        break;
      }
      case Op::kAdd: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] + b[i];
        ++n_dispatch_;
        break;
      }
      case Op::kSub: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] - b[i];
        ++n_dispatch_;
        break;
      }
      case Op::kMul: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] * b[i];
        ++n_dispatch_;
        break;
      }
      case Op::kDiv: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        const uint8_t* m = MaskRow(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = a[i] / b[i];
          err |= static_cast<uint8_t>(b[i] == 0.0) & m[i];
        }
        any_err |= err != 0;
        ++n_dispatch_;
        break;
      }
      case Op::kMod: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        const uint8_t* m = MaskRow(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = std::fmod(a[i], b[i]);
          err |= static_cast<uint8_t>(b[i] == 0.0) & m[i];
        }
        any_err |= err != 0;
        ++n_dispatch_;
        break;
      }
      case Op::kNeg: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = -a[i];
        ++n_dispatch_;
        break;
      }
      case Op::kAbs: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::fabs(a[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kMin2: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = std::min(a[i], b[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kMax2: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = std::max(a[i], b[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kSqrt: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const uint8_t* m = MaskRow(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = std::sqrt(a[i]);
          err |= static_cast<uint8_t>(a[i] < 0.0) & m[i];
        }
        any_err |= err != 0;
        ++n_dispatch_;
        break;
      }
      case Op::kFloor: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::floor(a[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kCeil: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::ceil(a[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kClamp: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        const double* c = Reg(in.c);
        for (int32_t i = 0; i < n; ++i) d[i] = std::clamp(a[i], b[i], c[i]);
        ++n_dispatch_;
        break;
      }
      case Op::kCmp: {
        uint8_t* d = MaskRow(in.dst);
        const double* a = Reg(in.a);
        const double* b = Reg(in.b);
        switch (in.cmp) {
          case CompareOp::kEq:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] == b[i];
            break;
          case CompareOp::kNe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] != b[i];
            break;
          case CompareOp::kLt:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] < b[i];
            break;
          case CompareOp::kLe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] <= b[i];
            break;
          case CompareOp::kGt:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] > b[i];
            break;
          case CompareOp::kGe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] >= b[i];
            break;
        }
        ++n_dispatch_;
        break;
      }
      case Op::kMaskAnd: {
        uint8_t* d = MaskRow(in.dst);
        const uint8_t* a = MaskRow(in.a);
        const uint8_t* b = MaskRow(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] & b[i];
        ++n_dispatch_;
        break;
      }
      case Op::kMaskAndNot: {
        uint8_t* d = MaskRow(in.dst);
        const uint8_t* a = MaskRow(in.a);
        const uint8_t* b = MaskRow(in.b);
        for (int32_t i = 0; i < n; ++i) {
          d[i] = a[i] & static_cast<uint8_t>(b[i] ^ 1);
        }
        ++n_dispatch_;
        break;
      }
      case Op::kMaskOr: {
        uint8_t* d = MaskRow(in.dst);
        const uint8_t* a = MaskRow(in.a);
        const uint8_t* b = MaskRow(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] | b[i];
        ++n_dispatch_;
        break;
      }
      case Op::kMaskNot: {
        uint8_t* d = MaskRow(in.dst);
        const uint8_t* a = MaskRow(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] ^ 1;
        ++n_dispatch_;
        break;
      }
      case Op::kRandom: {
        double* d = Reg(in.dst);
        const double* a = Reg(in.a);
        const uint8_t* m = MaskRow(in.mask);
        for (int32_t i = 0; i < n; ++i) {
          if (m[i] == 0) {
            d[i] = 0.0;
            continue;
          }
          d[i] = static_cast<double>(rnd.DrawBounded(
              keys[i], static_cast<int64_t>(a[i]), kRandomRange));
          ++n_scalar_;
        }
        break;
      }
      case Op::kAgg: {
        const uint8_t* m = MaskRow(in.mask);
        const int32_t nout = in.b;
        // Pure naive probes (no provider plugin) run the declaration's
        // vectorized scan when one compiled; with a provider installed
        // (sharing / indexed / adaptive) its plan stays authoritative.
        const AggScanProgram* scan =
            provider == nullptr &&
                    in.aux < static_cast<int32_t>(prog.agg_scans.size())
                ? prog.agg_scans[in.aux].get()
                : nullptr;
        if (scan != nullptr && scan->nout == nout) {
          scan_args_.resize(in.args.size());
          scan_out_.resize(nout);
          for (int32_t i = 0; i < n && !any_err; ++i) {
            if (m[i] == 0) {
              for (int32_t k = 0; k < nout; ++k) Reg(in.dst + k)[i] = 0.0;
              continue;
            }
            for (size_t j = 0; j < in.args.size(); ++j) {
              scan_args_[j] = Reg(in.args[j])[i];
            }
            if (!RunAggScan(*scan, table, lo + i, scan_args_.data(),
                            scan_out_.data())) {
              any_err = true;
              break;
            }
            for (int32_t k = 0; k < nout; ++k) {
              Reg(in.dst + k)[i] = scan_out_[k];
            }
            ++n_scalar_;
          }
          break;
        }
        for (int32_t i = 0; i < n && !any_err; ++i) {
          if (m[i] == 0) {
            for (int32_t k = 0; k < nout; ++k) Reg(in.dst + k)[i] = 0.0;
            continue;
          }
          call_args_.clear();
          for (int32_t r : in.args) call_args_.push_back(Value(Reg(r)[i]));
          Result<Value> v =
              provider != nullptr
                  ? provider->Eval(in.aux, call_args_, lo + i, table, rnd,
                                   shard)
                  : interp.EvalAggregate(in.aux, call_args_, lo + i, table,
                                         rnd);
          // Errors (and any unexpected result shape) re-run the batch
          // through the interpreter, which reports the exact error.
          if (!v.ok()) {
            any_err = true;
            break;
          }
          if (nout == 1) {
            if (!v->is_scalar()) {
              any_err = true;
              break;
            }
            Reg(in.dst)[i] = v->scalar();
          } else {
            if (!v->is_row() ||
                static_cast<int32_t>(v->row().vals.size()) != nout) {
              any_err = true;
              break;
            }
            const std::vector<double>& vals = v->row().vals;
            for (int32_t k = 0; k < nout; ++k) Reg(in.dst + k)[i] = vals[k];
          }
          ++n_scalar_;
        }
        break;
      }
      case Op::kPerform: {
        const uint8_t* m = MaskRow(in.mask);
        const PerformSig& sig = prog.performs[in.aux];
        for (int32_t i = 0; i < n; ++i) {
          if (m[i] == 0) continue;
          Pending p;
          p.lane = i;
          p.sig = in.aux;
          p.arg_offset = static_cast<int32_t>(pending_args_.size());
          BoxPerformArgs(sig, in.args, regs_, i, &pending_args_);
          pending_.push_back(p);
          ++n_scalar_;
        }
        break;
      }
    }
  }

  if (any_err) {
    // Discard everything this batch computed and replay it unit-at-a-time:
    // the interpreter reproduces the identical per-unit error and the
    // identical partial effect log (no effect was emitted above).
    pending_.clear();
    pending_args_.clear();
    ++n_fallback_;
    if (tracer_ != nullptr) {
      char args[96];
      std::snprintf(args, sizeof(args), "{\"row_lo\":%lld,\"rows\":%d}",
                    static_cast<long long>(lo), n);
      tracer_->Instant("vm.bail", 1 + shard, shard, args);
    }
    for (int32_t i = 0; i < n; ++i) {
      SGL_RETURN_NOT_OK(interp.RunUnit(table, lo + i, rnd, sink, shard));
    }
    return Status::OK();
  }

  // Flush queued performs in (unit, program-order) order — the
  // interpreter's effect-log order. stable_sort keeps program order
  // within a lane.
  std::stable_sort(
      pending_.begin(), pending_.end(),
      [](const Pending& a, const Pending& b) { return a.lane < b.lane; });
  ActionSink* action_sink = interp.action_sink();
  for (const Pending& p : pending_) {
    const PerformSig& sig = prog.performs[p.sig];
    call_args_.assign(
        pending_args_.begin() + p.arg_offset,
        pending_args_.begin() + p.arg_offset +
            static_cast<ptrdiff_t>(sig.args.size()));
    const RowId u_row = lo + p.lane;
    bool handled = false;
    if (action_sink != nullptr) {
      SGL_ASSIGN_OR_RETURN(
          handled, action_sink->Perform(sig.action_index, call_args_, u_row,
                                        table, rnd, sink, shard));
    }
    if (!handled) {
      // Naive effect application: the action's vectorized scan when one
      // compiled and every argument is scalar, else the interpreter's
      // per-row AST walk. The scan applies nothing on error, so the
      // fallback reproduces the exact error and partial effect log.
      const ActionScanProgram* ascan =
          sig.action_index < static_cast<int32_t>(prog.action_scans.size())
              ? prog.action_scans[sig.action_index].get()
              : nullptr;
      bool applied = false;
      if (ascan != nullptr &&
          call_args_.size() == ascan->arg_regs.size()) {
        bool scalars = true;
        scan_args_.resize(call_args_.size());
        for (size_t j = 0; j < call_args_.size(); ++j) {
          if (!call_args_[j].is_scalar()) {
            scalars = false;
            break;
          }
          scan_args_[j] = call_args_[j].scalar();
        }
        if (scalars) {
          applied = RunActionScan(*ascan, table, u_row, rnd,
                                  scan_args_.data(), sink);
        }
      }
      if (!applied) {
        SGL_RETURN_NOT_OK(interp.ExecAction(sig.action_index, call_args_,
                                            u_row, table, rnd, sink));
      }
    }
  }
  return Status::OK();
}

namespace {

/// Executes the post-prologue instructions of `scan` (an AggScanProgram
/// or ActionScanProgram) over scanned rows [lo, lo + n) of `table`
/// against the caller's register files. Pure batch dispatch except
/// kRandom (action scans only; `rnd` is null for aggregate scans, whose
/// compiler never emits it), which draws per scanned row — exactly the
/// interpreter's keying. Returns false if any instruction flagged a
/// runtime error under its mask (the rows the interpreter's evaluation
/// order would fail on).
template <typename ScanProgram>
bool RunScanOps(const ScanProgram& scan, const EnvironmentTable& table,
                RowId lo, int32_t n, const TickRandom* rnd, double* regs,
                uint8_t* masks, int64_t* dispatches) {
  const auto R = [regs](int32_t r) {
    return regs + static_cast<size_t>(r) * kMaxBatchLanes;
  };
  const auto M = [masks](int32_t m) {
    return masks + static_cast<size_t>(m) * kMaxBatchLanes;
  };
  const int64_t* keys = table.Keys().data() + lo;
  bool any_err = false;

  for (size_t pc = scan.num_hoisted; pc < scan.code.size() && !any_err;
       ++pc) {
    const Instr& in = scan.code[pc];
    switch (in.op) {
      case Op::kConst: {  // only reachable if a body ever carries one
        double* d = R(in.dst);
        std::fill(d, d + n, scan.consts[in.aux]);
        break;
      }
      case Op::kLoadAttr: {
        double* d = R(in.dst);
        if (in.aux == kKeyAttrId) {
          for (int32_t i = 0; i < n; ++i) {
            d[i] = static_cast<double>(keys[i]);
          }
        } else {
          const double* col = table.Column(in.aux).data() + lo;
          std::memcpy(d, col, sizeof(double) * n);
        }
        break;
      }
      case Op::kAdd: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] + b[i];
        break;
      }
      case Op::kSub: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] - b[i];
        break;
      }
      case Op::kMul: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] * b[i];
        break;
      }
      case Op::kDiv: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        const uint8_t* m = M(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = a[i] / b[i];
          err |= static_cast<uint8_t>(b[i] == 0.0) & m[i];
        }
        any_err |= err != 0;
        break;
      }
      case Op::kMod: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        const uint8_t* m = M(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = std::fmod(a[i], b[i]);
          err |= static_cast<uint8_t>(b[i] == 0.0) & m[i];
        }
        any_err |= err != 0;
        break;
      }
      case Op::kNeg: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = -a[i];
        break;
      }
      case Op::kAbs: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::fabs(a[i]);
        break;
      }
      case Op::kMin2: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = std::min(a[i], b[i]);
        break;
      }
      case Op::kMax2: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = std::max(a[i], b[i]);
        break;
      }
      case Op::kSqrt: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const uint8_t* m = M(in.mask);
        uint8_t err = 0;
        for (int32_t i = 0; i < n; ++i) {
          d[i] = std::sqrt(a[i]);
          err |= static_cast<uint8_t>(a[i] < 0.0) & m[i];
        }
        any_err |= err != 0;
        break;
      }
      case Op::kFloor: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::floor(a[i]);
        break;
      }
      case Op::kCeil: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = std::ceil(a[i]);
        break;
      }
      case Op::kClamp: {
        double* d = R(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        const double* c = R(in.c);
        for (int32_t i = 0; i < n; ++i) d[i] = std::clamp(a[i], b[i], c[i]);
        break;
      }
      case Op::kCmp: {
        uint8_t* d = M(in.dst);
        const double* a = R(in.a);
        const double* b = R(in.b);
        switch (in.cmp) {
          case CompareOp::kEq:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] == b[i];
            break;
          case CompareOp::kNe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] != b[i];
            break;
          case CompareOp::kLt:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] < b[i];
            break;
          case CompareOp::kLe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] <= b[i];
            break;
          case CompareOp::kGt:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] > b[i];
            break;
          case CompareOp::kGe:
            for (int32_t i = 0; i < n; ++i) d[i] = a[i] >= b[i];
            break;
        }
        break;
      }
      case Op::kMaskAnd: {
        uint8_t* d = M(in.dst);
        const uint8_t* a = M(in.a);
        const uint8_t* b = M(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] & b[i];
        break;
      }
      case Op::kMaskAndNot: {
        uint8_t* d = M(in.dst);
        const uint8_t* a = M(in.a);
        const uint8_t* b = M(in.b);
        for (int32_t i = 0; i < n; ++i) {
          d[i] = a[i] & static_cast<uint8_t>(b[i] ^ 1);
        }
        break;
      }
      case Op::kMaskOr: {
        uint8_t* d = M(in.dst);
        const uint8_t* a = M(in.a);
        const uint8_t* b = M(in.b);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] | b[i];
        break;
      }
      case Op::kMaskNot: {
        uint8_t* d = M(in.dst);
        const uint8_t* a = M(in.a);
        for (int32_t i = 0; i < n; ++i) d[i] = a[i] ^ 1;
        break;
      }
      case Op::kRandom: {
        if (rnd == nullptr) return false;  // aggregate scans never draw
        double* d = R(in.dst);
        const double* a = R(in.a);
        const uint8_t* m = M(in.mask);
        for (int32_t i = 0; i < n; ++i) {
          d[i] = m[i] == 0 ? 0.0
                           : static_cast<double>(rnd->DrawBounded(
                                 keys[i], static_cast<int64_t>(a[i]),
                                 kRandomRange));
        }
        break;
      }
      case Op::kAgg:
      case Op::kPerform:
        // The scan compiler never emits these; treat one as an error so
        // the batch falls back to the interpreter.
        return false;
    }
    ++*dispatches;
  }
  return !any_err;
}

}  // namespace

bool BatchExecutor::RunAggScan(const AggScanProgram& scan,
                               const EnvironmentTable& table, RowId u_row,
                               const double* args, double* out) {
  ScanState& state = scan_states_[scan.agg_index];
  if (!state.prepared) {
    state.regs.assign(static_cast<size_t>(scan.num_regs) * kMaxBatchLanes,
                      0.0);
    state.masks.assign(static_cast<size_t>(scan.num_masks) * kMaxBatchLanes,
                       0);
    for (int32_t pc = 0; pc < scan.num_hoisted; ++pc) {
      const Instr& in = scan.code[pc];
      double* d = state.regs.data() +
                  static_cast<size_t>(in.dst) * kMaxBatchLanes;
      std::fill(d, d + kMaxBatchLanes, scan.consts[in.aux]);
    }
    state.prepared = true;
  }
  // Probe-uniform registers: the scalar arguments and the probing unit's
  // attribute values, broadcast lane-wide for this probe.
  for (size_t j = 0; j < scan.arg_regs.size(); ++j) {
    double* d = state.regs.data() +
                static_cast<size_t>(scan.arg_regs[j]) * kMaxBatchLanes;
    std::fill(d, d + kMaxBatchLanes, args[j]);
  }
  for (const auto& [attr, reg] : scan.u_attr_regs) {
    double* d =
        state.regs.data() + static_cast<size_t>(reg) * kMaxBatchLanes;
    std::fill(d, d + kMaxBatchLanes, table.Get(u_row, attr));
  }

  const int32_t rows = table.NumRows();
  const uint8_t* where =
      state.masks.data() +
      static_cast<size_t>(scan.where_mask) * kMaxBatchLanes;

  if (scan.metric_reg >= 0) {
    // Row-returning mode (nearest/argmin/argmax): the metric computes in
    // lanes; the best row resolves sequentially in row order with the
    // interpreter's exact tiebreak (smaller metric, then smaller key).
    const double* metric =
        state.regs.data() +
        static_cast<size_t>(scan.metric_reg) * kMaxBatchLanes;
    bool found = false;
    double best_value = 0.0;
    int64_t best_key = 0;
    RowId best_row = -1;
    for (RowId b = 0; b < rows; b += kMaxBatchLanes) {
      const int32_t n = std::min<RowId>(kMaxBatchLanes, rows - b);
      uint8_t* m0 = state.masks.data();
      std::fill(m0, m0 + kMaxBatchLanes, uint8_t{0});
      std::fill(m0, m0 + n, uint8_t{1});
      if (!RunScanOps(scan, table, b, n, nullptr, state.regs.data(),
                      state.masks.data(), &n_dispatch_)) {
        return false;
      }
      for (int32_t i = 0; i < n; ++i) {
        if (where[i] == 0) continue;
        const int64_t key = table.KeyAt(b + i);
        if (!found || metric[i] < best_value ||
            (metric[i] == best_value && key < best_key)) {
          found = true;
          best_value = metric[i];
          best_key = key;
          best_row = b + i;
        }
      }
    }
    // Finalization matches the interpreter's row result: found flag,
    // squared distance (nearest only), then every schema attribute of
    // the best row; all zeros when nothing matched.
    std::fill(out, out + scan.nout, 0.0);
    if (found) {
      out[0] = 1.0;
      if (scan.row_func == AggFunc::kNearest) out[1] = best_value;
      for (AttrId a = 0; a < table.schema().NumAttrs(); ++a) {
        out[2 + a] = table.Get(best_row, a);
      }
    }
    ++n_scan_probes_;
    return true;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t items = scan.items.size();
  int64_t count = 0;
  acc_sums_.assign(items, 0.0);
  acc_sumsq_.assign(items, 0.0);
  acc_mins_.assign(items, kInf);
  acc_maxs_.assign(items, -kInf);

  for (RowId b = 0; b < rows; b += kMaxBatchLanes) {
    const int32_t n = std::min<RowId>(kMaxBatchLanes, rows - b);
    uint8_t* m0 = state.masks.data();
    std::fill(m0, m0 + kMaxBatchLanes, uint8_t{0});
    std::fill(m0, m0 + n, uint8_t{1});
    if (!RunScanOps(scan, table, b, n, nullptr, state.regs.data(),
                    state.masks.data(), &n_dispatch_)) {
      return false;
    }
    // Sequential accumulation in row order: float addition is not
    // associative, so this loop — not the vector ops above — is what
    // keeps the scan bit-exact against the interpreter's row loop.
    for (int32_t i = 0; i < n; ++i) {
      if (where[i] == 0) continue;
      ++count;
      for (size_t k = 0; k < items; ++k) {
        if (scan.items[k].func == AggFunc::kCount) continue;
        const double t =
            state.regs[static_cast<size_t>(scan.items[k].term_reg) *
                           kMaxBatchLanes +
                       i];
        acc_sums_[k] += t;
        acc_sumsq_[k] += t * t;
        acc_mins_[k] = std::min(acc_mins_[k], t);
        acc_maxs_[k] = std::max(acc_maxs_[k], t);
      }
    }
  }

  // Finalization formulas match Interpreter::EvalAggregate exactly.
  for (size_t k = 0; k < items; ++k) {
    switch (scan.items[k].func) {
      case AggFunc::kCount:
        out[k] = static_cast<double>(count);
        break;
      case AggFunc::kSum:
        out[k] = acc_sums_[k];
        break;
      case AggFunc::kAvg:
        out[k] =
            count == 0 ? 0.0 : acc_sums_[k] / static_cast<double>(count);
        break;
      case AggFunc::kMin:
        out[k] = count == 0 ? 0.0 : acc_mins_[k];
        break;
      case AggFunc::kMax:
        out[k] = count == 0 ? 0.0 : acc_maxs_[k];
        break;
      case AggFunc::kStddev: {
        if (count == 0) {
          out[k] = 0.0;
          break;
        }
        const double cnt = static_cast<double>(count);
        const double mean = acc_sums_[k] / cnt;
        const double var = acc_sumsq_[k] / cnt - mean * mean;
        out[k] = var <= 0.0 ? 0.0 : std::sqrt(var);
        break;
      }
      default:
        out[k] = 0.0;
        break;
    }
  }
  ++n_scan_probes_;
  return true;
}

bool BatchExecutor::RunActionScan(const ActionScanProgram& scan,
                                  const EnvironmentTable& table, RowId u_row,
                                  const TickRandom& rnd, const double* args,
                                  EffectSink* sink) {
  ScanState& state = action_states_[scan.action_index];
  if (!state.prepared) {
    state.regs.assign(static_cast<size_t>(scan.num_regs) * kMaxBatchLanes,
                      0.0);
    state.masks.assign(static_cast<size_t>(scan.num_masks) * kMaxBatchLanes,
                       0);
    for (int32_t pc = 0; pc < scan.num_hoisted; ++pc) {
      const Instr& in = scan.code[pc];
      double* d = state.regs.data() +
                  static_cast<size_t>(in.dst) * kMaxBatchLanes;
      std::fill(d, d + kMaxBatchLanes, scan.consts[in.aux]);
    }
    state.prepared = true;
  }
  // Exec-uniform registers: the scalar arguments and the performing
  // unit's attribute values, broadcast lane-wide for this exec.
  for (size_t j = 0; j < scan.arg_regs.size(); ++j) {
    double* d = state.regs.data() +
                static_cast<size_t>(scan.arg_regs[j]) * kMaxBatchLanes;
    std::fill(d, d + kMaxBatchLanes, args[j]);
  }
  for (const auto& [attr, reg] : scan.u_attr_regs) {
    double* d =
        state.regs.data() + static_cast<size_t>(reg) * kMaxBatchLanes;
    std::fill(d, d + kMaxBatchLanes, table.Get(u_row, attr));
  }

  // Matched effects buffer per update so that nothing reaches the sink
  // unless the whole exec is error-free: on a flagged lane the caller
  // falls back to Interpreter::ExecAction against an untouched sink,
  // which reproduces the identical error and partial effect log.
  effect_bufs_.resize(scan.updates.size());
  for (std::vector<PendingEffect>& buf : effect_bufs_) buf.clear();

  const int32_t rows = table.NumRows();
  for (RowId b = 0; b < rows; b += kMaxBatchLanes) {
    const int32_t n = std::min<RowId>(kMaxBatchLanes, rows - b);
    uint8_t* m0 = state.masks.data();
    std::fill(m0, m0 + kMaxBatchLanes, uint8_t{0});
    std::fill(m0, m0 + n, uint8_t{1});
    if (!RunScanOps(scan, table, b, n, &rnd, state.regs.data(),
                    state.masks.data(), &n_dispatch_)) {
      return false;
    }
    for (size_t ui = 0; ui < scan.updates.size(); ++ui) {
      const ActionScanUpdate& update = scan.updates[ui];
      const uint8_t* where =
          state.masks.data() +
          static_cast<size_t>(update.where_mask) * kMaxBatchLanes;
      std::vector<PendingEffect>& buf = effect_bufs_[ui];
      for (int32_t i = 0; i < n; ++i) {
        if (where[i] == 0) continue;
        for (const ActionScanSet& set : update.sets) {
          PendingEffect pe;
          pe.row = b + i;
          pe.attr = set.attr;
          pe.op = set.op;
          pe.value =
              state.regs[static_cast<size_t>(set.value_reg) *
                             kMaxBatchLanes +
                         i];
          pe.priority =
              set.op == SetOp::kSetPriority
                  ? state.regs[static_cast<size_t>(set.priority_reg) *
                                   kMaxBatchLanes +
                               i]
                  : 0.0;
          buf.push_back(pe);
        }
      }
    }
  }

  // Apply in the interpreter's order: update-major, then row-major (the
  // append order above), then set-item order. Accumulation into the sink
  // in this exact order keeps float combining bit-exact.
  for (const std::vector<PendingEffect>& buf : effect_bufs_) {
    for (const PendingEffect& pe : buf) {
      if (pe.op == SetOp::kSetPriority) {
        sink->AccumulateSet(pe.row, pe.attr, pe.value, pe.priority);
      } else {
        sink->Accumulate(pe.row, pe.attr, pe.value);
      }
    }
  }
  ++n_action_execs_;
  return true;
}

}  // namespace vm
}  // namespace sgl
