#include "vm/bytecode.h"

#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace sgl {
namespace vm {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kLoadAttr: return "load";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kAbs: return "abs";
    case Op::kMin2: return "min";
    case Op::kMax2: return "max";
    case Op::kSqrt: return "sqrt";
    case Op::kFloor: return "floor";
    case Op::kCeil: return "ceil";
    case Op::kClamp: return "clamp";
    case Op::kCmp: return "cmp";
    case Op::kMaskAnd: return "mand";
    case Op::kMaskAndNot: return "mandn";
    case Op::kMaskOr: return "mor";
    case Op::kMaskNot: return "mnot";
    case Op::kRandom: return "random";
    case Op::kAgg: return "agg";
    case Op::kPerform: return "perform";
  }
  return "?";
}

void CompiledProgram::BindMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix,
                                  uint32_t extra_flags) {
  // Batch boundaries move with the chunking (thread count / grain), so
  // everything counted per batch or per dispatch is execution-dependent;
  // the per-unit tallies are not.
  const uint32_t exec = obs::kMetricExecDependent | extra_flags;
  batches = registry->GetCounter(prefix + "batches", exec);
  batch_dispatches = registry->GetCounter(prefix + "batch_dispatches", exec);
  scalar_lane_ops =
      registry->GetCounter(prefix + "scalar_lane_ops", extra_flags);
  agg_scan_probes =
      registry->GetCounter(prefix + "agg_scan_probes", extra_flags);
  action_scan_execs =
      registry->GetCounter(prefix + "action_scan_execs", extra_flags);
  interp_fallbacks = registry->GetCounter(prefix + "interp_fallbacks", exec);
}

bool OpIsScalar(Op op) {
  return op == Op::kRandom || op == Op::kAgg || op == Op::kPerform;
}

namespace {

const char* CmpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
  }
  return "?";
}

std::string RegList(const std::vector<int32_t>& regs) {
  std::string out;
  for (size_t i = 0; i < regs.size(); ++i) {
    if (i > 0) out += ", ";
    out += "r" + std::to_string(regs[i]);
  }
  return out;
}

/// One listing line. Shared by the decision program and the aggregate
/// scan programs; `row_prefix` names what kLoadAttr scans ("u" for the
/// deciding unit, "e" for the aggregate's scanned row) and `indent`
/// shifts scan listings under their aggregate header.
void PrintInstr(std::ostringstream& os, size_t pc, const Instr& in,
                const std::vector<double>& consts, int32_t num_hoisted,
                const Script* script, const std::vector<PerformSig>* performs,
                const char* row_prefix, const char* indent) {
  char head[32];
  std::snprintf(head, sizeof(head), "%s%03d  ", indent,
                static_cast<int>(pc));
  os << head;
  switch (in.op) {
    case Op::kConst:
      os << "r" << in.dst << " <- const " << FormatDouble(consts[in.aux], 6)
         << (static_cast<int32_t>(pc) < num_hoisted
                 ? "   ; hoisted (unit-invariant)"
                 : "");
      break;
    case Op::kLoadAttr:
      os << "r" << in.dst << " <- load ";
      if (script != nullptr && in.aux < script->schema.NumAttrs()) {
        os << row_prefix << "." << script->schema.attr(in.aux).name;
      } else {
        os << "attr#" << in.aux;
      }
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kMin2:
    case Op::kMax2:
      os << "r" << in.dst << " <- " << OpName(in.op) << " r" << in.a
         << ", r" << in.b;
      break;
    case Op::kNeg:
    case Op::kAbs:
    case Op::kSqrt:
    case Op::kFloor:
    case Op::kCeil:
      os << "r" << in.dst << " <- " << OpName(in.op) << " r" << in.a;
      break;
    case Op::kClamp:
      os << "r" << in.dst << " <- clamp r" << in.a << ", r" << in.b
         << ", r" << in.c;
      break;
    case Op::kCmp:
      os << "m" << in.dst << " <- cmp." << CmpName(in.cmp) << " r" << in.a
         << ", r" << in.b;
      break;
    case Op::kMaskAnd:
    case Op::kMaskAndNot:
    case Op::kMaskOr:
    case Op::kMaskNot:
      os << "m" << in.dst << " <- " << OpName(in.op) << " m" << in.a;
      if (in.op != Op::kMaskNot) os << ", m" << in.b;
      break;
    case Op::kRandom:
      os << "r" << in.dst << " <- random r" << in.a << " [m" << in.mask
         << "]";
      break;
    case Op::kAgg:
      os << "r" << in.dst;
      if (in.b > 1) os << "..r" << (in.dst + in.b - 1);
      os << " <- agg ";
      if (script != nullptr) {
        os << script->program.aggregates[in.aux].name;
      } else {
        os << "#" << in.aux;
      }
      os << "(" << RegList(in.args) << ") [m" << in.mask << "]";
      break;
    case Op::kPerform:
      os << "perform ";
      if (script != nullptr && performs != nullptr) {
        os << script->program.actions[(*performs)[in.aux].action_index].name;
      } else {
        os << "#" << in.aux;
      }
      os << "(" << RegList(in.args) << ") [m" << in.mask << "]";
      break;
  }
  os << "\n";
}

}  // namespace

std::string CompiledProgram::Disassemble() const {
  std::ostringstream os;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    PrintInstr(os, pc, code[pc], consts, num_hoisted, script, &performs,
               "u", "  ");
  }
  for (size_t i = 0; i < agg_scans.size(); ++i) {
    const char* name = script != nullptr
                           ? script->program.aggregates[i].name.c_str()
                           : "?";
    const AggScanProgram* scan = agg_scans[i].get();
    if (scan == nullptr) {
      os << "  -- aggregate " << name << ": interpreted probe";
      if (i < agg_notes.size() && !agg_notes[i].empty()) {
        os << " (" << agg_notes[i] << ")";
      }
      os << " --\n";
      continue;
    }
    os << "  -- aggregate " << name << ": vectorized scan ("
       << scan->code.size() << " instrs, " << scan->num_regs << " regs, "
       << scan->num_masks << " masks; where -> m" << scan->where_mask
       << ") --\n";
    // Uniform registers the executor broadcasts per probe (no
    // instructions write them).
    for (size_t j = 0; j < scan->arg_regs.size(); ++j) {
      os << "    uni  r" << scan->arg_regs[j] << " <- arg ";
      if (script != nullptr) {
        os << "'" << script->program.aggregates[i].params[j + 1] << "'";
      } else {
        os << j;
      }
      os << "\n";
    }
    for (const auto& [attr, reg] : scan->u_attr_regs) {
      os << "    uni  r" << reg << " <- ";
      if (script != nullptr && attr < script->schema.NumAttrs()) {
        os << "u." << script->schema.attr(attr).name;
      } else {
        os << "u.attr#" << attr;
      }
      os << "\n";
    }
    for (size_t pc = 0; pc < scan->code.size(); ++pc) {
      PrintInstr(os, pc, scan->code[pc], scan->consts, scan->num_hoisted,
                 script, nullptr, "e", "    ");
    }
    for (const AggScanItem& item : scan->items) {
      os << "    acc  " << AggFuncName(item.func);
      if (item.term_reg >= 0) os << " r" << item.term_reg;
      os << "\n";
    }
    if (scan->metric_reg >= 0) {
      os << "    best " << AggFuncName(scan->row_func) << " metric r"
         << scan->metric_reg << " (row-order, key tiebreak)\n";
    }
  }
  for (size_t i = 0; i < action_scans.size(); ++i) {
    const char* name = script != nullptr
                           ? script->program.actions[i].name.c_str()
                           : "?";
    const ActionScanProgram* scan = action_scans[i].get();
    if (scan == nullptr) {
      os << "  -- action " << name << ": interpreted exec";
      if (i < action_notes.size() && !action_notes[i].empty()) {
        os << " (" << action_notes[i] << ")";
      }
      os << " --\n";
      continue;
    }
    os << "  -- action " << name << ": vectorized update scan ("
       << scan->code.size() << " instrs, " << scan->num_regs << " regs, "
       << scan->num_masks << " masks) --\n";
    for (size_t j = 0; j < scan->arg_regs.size(); ++j) {
      os << "    uni  r" << scan->arg_regs[j] << " <- arg ";
      if (script != nullptr) {
        os << "'" << script->program.actions[i].params[j + 1] << "'";
      } else {
        os << j;
      }
      os << "\n";
    }
    for (const auto& [attr, reg] : scan->u_attr_regs) {
      os << "    uni  r" << reg << " <- ";
      if (script != nullptr && attr < script->schema.NumAttrs()) {
        os << "u." << script->schema.attr(attr).name;
      } else {
        os << "u.attr#" << attr;
      }
      os << "\n";
    }
    for (size_t pc = 0; pc < scan->code.size(); ++pc) {
      PrintInstr(os, pc, scan->code[pc], scan->consts, scan->num_hoisted,
                 script, nullptr, "e", "    ");
    }
    for (const ActionScanUpdate& update : scan->updates) {
      os << "    upd  [m" << update.where_mask << "]";
      for (const ActionScanSet& set : update.sets) {
        os << " e.";
        if (script != nullptr && set.attr < script->schema.NumAttrs()) {
          os << script->schema.attr(set.attr).name;
        } else {
          os << "attr#" << set.attr;
        }
        switch (set.op) {
          case SetOp::kAdd: os << " += r" << set.value_reg; break;
          case SetOp::kMaxOf: os << " max= r" << set.value_reg; break;
          case SetOp::kMinOf: os << " min= r" << set.value_reg; break;
          case SetOp::kSetPriority:
            os << " set= r" << set.value_reg << " @r" << set.priority_reg;
            break;
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace vm
}  // namespace sgl
