#include "vm/compiler.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sgl/builtins.h"

namespace sgl {
namespace vm {

namespace {

/// Compile-time value: the register span an expression evaluates into.
/// Scalars span one register, Vec2 two, aggregate rows one per field.
struct CVal {
  ValueKind kind = ValueKind::kScalar;
  std::vector<int32_t> regs;
  std::shared_ptr<const RowLayout> layout;  // kRow only

  bool IsScalar() const { return kind == ValueKind::kScalar; }
  /// Mirrors Value::ConvertibleToVec (a two-field row acts as a Vec2).
  bool ConvertibleToVec() const {
    return kind == ValueKind::kVec2 ||
           (kind == ValueKind::kRow && regs.size() == 2);
  }
};

/// One named binding in an inline frame. Bindings made inside an if
/// branch stay visible (mirroring the interpreter's stack, which `if`
/// never pops) but are conditional: reading one would need per-lane
/// binding state, so the compiler bails instead.
struct LocalEntry {
  std::string name;
  CVal val;
  bool conditional = false;
};

/// One inlined function activation: its unit-tuple name and its bindings
/// (parameters first, then lets).
struct Frame {
  const std::string* u_name = nullptr;
  std::vector<LocalEntry> locals;
};

/// Bit pattern of a double, the interning key for the constant pool
/// (0.0 and -0.0 must stay distinct: they divide differently).
uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

class Compiler {
 public:
  explicit Compiler(const Script& script) : script_(&script) {}

  /// Lower one aggregate declaration to a columnar scan program: the
  /// where condition and every item term (or the row-returning metric)
  /// become batch instructions over E rows. Scalar parameters and
  /// probing-unit attributes compile to uniform registers the executor
  /// broadcasts per probe. Returns Unimplemented (with the reason) for
  /// declarations that must stay interpreted probes.
  Result<std::unique_ptr<AggScanProgram>> RunScan(int32_t agg_index) {
    const AggregateDecl& decl = script_->program.aggregates[agg_index];
    prog_ = std::make_unique<CompiledProgram>();
    in_scan_ = true;
    scan_row_var_ = &decl.row_var;
    scan_u_var_ = &decl.params[0];
    auto scan = std::make_unique<AggScanProgram>();
    scan->agg_index = agg_index;

    frames_.push_back(Frame{&decl.params[0], {}});
    for (size_t i = 1; i < decl.params.size(); ++i) {
      const int32_t reg = NewReg();
      scan->arg_regs.push_back(reg);
      frames_.back().locals.push_back(LocalEntry{
          decl.params[i], CVal{ValueKind::kScalar, {reg}, nullptr}, false});
    }

    SGL_ASSIGN_OR_RETURN(int32_t where, CompileCond(*decl.where));
    scan->where_mask = where;
    // Terms evaluate only on matching rows, so their error masks (and
    // the rows whose values reach the accumulators) refine to the match.
    cur_mask_ = where;
    if (decl.ReturnsRow()) {
      const AggItem& item = decl.items[0];
      scan->row_func = item.func;
      if (item.func == AggFunc::kNearest) {
        const AttrId px = script_->schema.Find("posx");
        const AttrId py = script_->schema.Find("posy");
        if (px == Schema::kInvalidAttr || py == Schema::kInvalidAttr) {
          return Bail("nearest() without posx/posy attributes", decl.line);
        }
        const int32_t dx = EmitBin(Op::kSub, AttrReg(px),
                                   ScanUniformAttrReg(px), decl.line);
        const int32_t dy = EmitBin(Op::kSub, AttrReg(py),
                                   ScanUniformAttrReg(py), decl.line);
        scan->metric_reg =
            EmitBin(Op::kAdd, EmitBin(Op::kMul, dx, dx, decl.line),
                    EmitBin(Op::kMul, dy, dy, decl.line), decl.line);
      } else {
        // argmin minimizes the term; argmax minimizes its negation —
        // the same metric the interpreter tracks.
        SGL_ASSIGN_OR_RETURN(
            int32_t term, CompileScalar(*item.term, "argmin/argmax terms"));
        scan->metric_reg = item.func == AggFunc::kArgmax
                               ? EmitUn(Op::kNeg, term, item.term->line)
                               : term;
      }
      scan->layout = script_->agg_layouts[agg_index];
      scan->nout = static_cast<int32_t>(scan->layout->fields.size());
    } else {
      for (const AggItem& item : decl.items) {
        AggScanItem out;
        out.func = item.func;
        if (item.func != AggFunc::kCount) {
          SGL_ASSIGN_OR_RETURN(out.term_reg,
                               CompileScalar(*item.term, "aggregate terms"));
        }
        scan->items.push_back(out);
      }
      if (decl.items.size() > 1) {
        scan->layout = script_->agg_layouts[agg_index];
      }
      scan->nout = static_cast<int32_t>(std::max<size_t>(decl.items.size(),
                                                         1));
    }
    frames_.pop_back();

    scan->num_hoisted = static_cast<int32_t>(prologue_.size());
    scan->code = std::move(prologue_);
    scan->code.insert(scan->code.end(),
                      std::make_move_iterator(body_.begin()),
                      std::make_move_iterator(body_.end()));
    scan->num_regs = prog_->num_regs;
    scan->num_masks = prog_->num_masks;
    scan->consts = std::move(prog_->consts);
    scan->u_attr_regs = std::move(scan_u_attrs_);
    return scan;
  }

  /// Lower one action declaration to a columnar update scan: every
  /// update's where condition and set-item values (and priorities)
  /// become one straight-line batch program over E rows; the runner
  /// applies each update's matched effects under its mask. random()
  /// stays legal here — the kRandom opcode draws per scanned row, which
  /// is exactly the interpreter's keying.
  Result<std::unique_ptr<ActionScanProgram>> RunActionScan(
      int32_t action_index) {
    const ActionDecl& decl = script_->program.actions[action_index];
    prog_ = std::make_unique<CompiledProgram>();
    in_scan_ = true;
    scan_allow_random_ = true;
    scan_u_var_ = &decl.params[0];
    auto scan = std::make_unique<ActionScanProgram>();
    scan->action_index = action_index;

    frames_.push_back(Frame{&decl.params[0], {}});
    for (size_t i = 1; i < decl.params.size(); ++i) {
      const int32_t reg = NewReg();
      scan->arg_regs.push_back(reg);
      frames_.back().locals.push_back(LocalEntry{
          decl.params[i], CVal{ValueKind::kScalar, {reg}, nullptr}, false});
    }

    for (const UpdateStmt& update : decl.updates) {
      scan_row_var_ = &update.row_var;
      cur_mask_ = 0;
      SGL_ASSIGN_OR_RETURN(int32_t where, CompileCond(*update.where));
      ActionScanUpdate out;
      out.where_mask = where;
      // Values and priorities evaluate only on matching rows.
      cur_mask_ = where;
      for (const SetItem& item : update.sets) {
        ActionScanSet set;
        set.attr = item.attr_id;
        set.op = item.op;
        SGL_ASSIGN_OR_RETURN(set.value_reg,
                             CompileScalar(*item.value, "effect values"));
        if (item.op == SetOp::kSetPriority) {
          SGL_ASSIGN_OR_RETURN(
              set.priority_reg,
              CompileScalar(*item.priority, "effect priorities"));
        }
        out.sets.push_back(set);
      }
      scan->updates.push_back(std::move(out));
    }
    frames_.pop_back();

    scan->num_hoisted = static_cast<int32_t>(prologue_.size());
    scan->code = std::move(prologue_);
    scan->code.insert(scan->code.end(),
                      std::make_move_iterator(body_.begin()),
                      std::make_move_iterator(body_.end()));
    scan->num_regs = prog_->num_regs;
    scan->num_masks = prog_->num_masks;
    scan->consts = std::move(prog_->consts);
    scan->u_attr_regs = std::move(scan_u_attrs_);
    return scan;
  }

  Result<std::unique_ptr<CompiledProgram>> Run() {
    prog_ = std::make_unique<CompiledProgram>();
    prog_->script = script_;
    if (script_->main_index < 0) {
      return Status::Unimplemented("vm: script has no main function");
    }
    const FunctionDecl& main =
        script_->program.functions[script_->main_index];
    frames_.push_back(Frame{&main.params[0], {}});
    SGL_RETURN_NOT_OK(CompileStmt(*main.body));
    frames_.pop_back();

    prog_->num_hoisted = static_cast<int32_t>(prologue_.size());
    prog_->code = std::move(prologue_);
    prog_->code.insert(prog_->code.end(),
                       std::make_move_iterator(body_.begin()),
                       std::make_move_iterator(body_.end()));
    for (const Instr& in : prog_->code) {
      if (OpIsScalar(in.op)) {
        ++prog_->num_scalar_ops;
      } else {
        ++prog_->num_batch_ops;
      }
    }
    return std::move(prog_);
  }

 private:
  static Status Bail(const std::string& reason, int32_t line) {
    return Status::Unimplemented("vm: ", reason, " (line ", line, ")");
  }

  int32_t NewReg() { return prog_->num_regs++; }
  int32_t NewMask() { return prog_->num_masks++; }

  /// Intern `v` into the constant pool; its kConst load lands in the
  /// hoisted prologue (unit- and tick-invariant).
  int32_t ConstReg(double v) {
    auto it = const_regs_.find(BitsOf(v));
    if (it != const_regs_.end()) return it->second;
    int32_t reg = NewReg();
    Instr in;
    in.op = Op::kConst;
    in.dst = reg;
    in.aux = static_cast<int32_t>(prog_->consts.size());
    prog_->consts.push_back(v);
    prologue_.push_back(std::move(in));
    const_regs_[BitsOf(v)] = reg;
    reg_const_[reg] = v;
    return reg;
  }

  /// True (with the value) if `reg` holds a compile-time constant.
  bool KnownConst(int32_t reg, double* v) const {
    auto it = reg_const_.find(reg);
    if (it == reg_const_.end()) return false;
    *v = it->second;
    return true;
  }

  /// Uniform register for a probing-unit attribute in an aggregate scan:
  /// the executor broadcasts table(u_row, attr) into it once per probe.
  int32_t ScanUniformAttrReg(AttrId attr) {
    auto it = scan_u_attr_regs_.find(attr);
    if (it != scan_u_attr_regs_.end()) return it->second;
    int32_t reg = NewReg();
    scan_u_attrs_.emplace_back(attr, reg);
    scan_u_attr_regs_[attr] = reg;
    return reg;
  }

  /// Load of a unit attribute, CSE'd program-wide: loads are pure and
  /// unmasked, so one load serves every (possibly inlined) use site.
  int32_t AttrReg(AttrId attr) {
    auto it = attr_regs_.find(attr);
    if (it != attr_regs_.end()) return it->second;
    int32_t reg = NewReg();
    Instr in;
    in.op = Op::kLoadAttr;
    in.dst = reg;
    in.aux = attr;
    body_.push_back(std::move(in));
    attr_regs_[attr] = reg;
    return reg;
  }

  /// Emit a scalar binary op with constant folding. Division/mod by a
  /// constant zero is never folded: the emitted instruction flags the
  /// error at runtime and the batch falls back to the interpreter, which
  /// reports the identical message.
  int32_t EmitBin(Op op, int32_t a, int32_t b, int32_t line) {
    double av = 0.0;
    double bv = 0.0;
    if (KnownConst(a, &av) && KnownConst(b, &bv)) {
      switch (op) {
        case Op::kAdd: return ConstReg(av + bv);
        case Op::kSub: return ConstReg(av - bv);
        case Op::kMul: return ConstReg(av * bv);
        case Op::kDiv:
          if (bv != 0.0) return ConstReg(av / bv);
          break;
        case Op::kMod:
          if (bv != 0.0) return ConstReg(std::fmod(av, bv));
          break;
        case Op::kMin2: return ConstReg(std::min(av, bv));
        case Op::kMax2: return ConstReg(std::max(av, bv));
        default: break;
      }
    }
    Instr in;
    in.op = op;
    in.dst = NewReg();
    in.a = a;
    in.b = b;
    in.mask = cur_mask_;
    in.line = line;
    body_.push_back(in);
    return in.dst;
  }

  int32_t EmitUn(Op op, int32_t a, int32_t line) {
    double av = 0.0;
    if (KnownConst(a, &av)) {
      switch (op) {
        case Op::kNeg: return ConstReg(-av);
        case Op::kAbs: return ConstReg(std::fabs(av));
        case Op::kSqrt:
          // Fold only well-defined draws; sqrt(-c) must keep its runtime
          // error, so it stays an instruction.
          if (av >= 0.0) return ConstReg(std::sqrt(av));
          break;
        case Op::kFloor: return ConstReg(std::floor(av));
        case Op::kCeil: return ConstReg(std::ceil(av));
        default: break;
      }
    }
    Instr in;
    in.op = op;
    in.dst = NewReg();
    in.a = a;
    in.mask = cur_mask_;
    in.line = line;
    body_.push_back(in);
    return in.dst;
  }

  int32_t EmitMask(Op op, int32_t a, int32_t b) {
    Instr in;
    in.op = op;
    in.dst = NewMask();
    in.a = a;
    in.b = b;
    body_.push_back(in);
    return in.dst;
  }

  Result<const CVal*> LookupLocal(const std::string& name, int32_t line) {
    const Frame& frame = frames_.back();
    for (auto it = frame.locals.rbegin(); it != frame.locals.rend(); ++it) {
      if (it->name != name) continue;
      if (it->conditional) {
        return Bail("local '" + name + "' is only conditionally bound",
                    line);
      }
      return &it->val;
    }
    return Bail("unbound name '" + name + "'", line);
  }

  Result<int32_t> CompileScalar(const Expr& e, const char* what) {
    SGL_ASSIGN_OR_RETURN(CVal v, CompileExpr(e));
    if (!v.IsScalar()) return Bail(std::string(what) + " must be scalar",
                                   e.line);
    return v.regs[0];
  }

  Result<CVal> CompileExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return CVal{ValueKind::kScalar, {ConstReg(e.number)}, nullptr};
      case ExprKind::kVarRef: {
        SGL_ASSIGN_OR_RETURN(const CVal* v, LookupLocal(e.name, e.line));
        return *v;
      }
      case ExprKind::kAttrRef: {
        if (in_scan_) {
          // Inside a scan the row variable's attributes load columnar
          // (the scanned axis); the probing/performing unit's attributes
          // are lane-uniform per probe.
          if (scan_row_var_ != nullptr && e.tuple_var == *scan_row_var_) {
            return CVal{ValueKind::kScalar, {AttrReg(e.attr_id)}, nullptr};
          }
          if (e.tuple_var == *scan_u_var_) {
            return CVal{ValueKind::kScalar,
                        {ScanUniformAttrReg(e.attr_id)},
                        nullptr};
          }
          return Bail("attribute of unbound tuple '" + e.tuple_var + "'",
                      e.line);
        }
        if (e.tuple_var != *frames_.back().u_name) {
          return Bail("attribute of non-unit tuple '" + e.tuple_var + "'",
                      e.line);
        }
        return CVal{ValueKind::kScalar, {AttrReg(e.attr_id)}, nullptr};
      }
      case ExprKind::kFieldAccess: {
        SGL_ASSIGN_OR_RETURN(CVal base, CompileExpr(*e.args[0]));
        if (base.kind == ValueKind::kVec2) {
          if (e.attr == "x") {
            return CVal{ValueKind::kScalar, {base.regs[0]}, nullptr};
          }
          if (e.attr == "y") {
            return CVal{ValueKind::kScalar, {base.regs[1]}, nullptr};
          }
          return Bail("vector has no field '" + e.attr + "'", e.line);
        }
        if (base.kind == ValueKind::kRow) {
          int32_t idx = base.layout->Find(e.attr);
          if (idx < 0) {
            return Bail("aggregate result has no field '" + e.attr + "'",
                        e.line);
          }
          return CVal{ValueKind::kScalar, {base.regs[idx]}, nullptr};
        }
        return Bail("field access '." + e.attr + "' on a scalar", e.line);
      }
      case ExprKind::kUnaryMinus: {
        SGL_ASSIGN_OR_RETURN(CVal v, CompileExpr(*e.args[0]));
        if (v.IsScalar()) {
          return CVal{ValueKind::kScalar,
                      {EmitUn(Op::kNeg, v.regs[0], e.line)},
                      nullptr};
        }
        if (v.ConvertibleToVec()) {
          // Matches the interpreter: vector negation is `v * -1.0`.
          int32_t neg1 = ConstReg(-1.0);
          return CVal{ValueKind::kVec2,
                      {EmitBin(Op::kMul, v.regs[0], neg1, e.line),
                       EmitBin(Op::kMul, v.regs[1], neg1, e.line)},
                      nullptr};
        }
        return Bail("cannot negate this value", e.line);
      }
      case ExprKind::kTuple: {
        SGL_ASSIGN_OR_RETURN(int32_t x,
                             CompileScalar(*e.args[0], "tuple components"));
        SGL_ASSIGN_OR_RETURN(int32_t y,
                             CompileScalar(*e.args[1], "tuple components"));
        return CVal{ValueKind::kVec2, {x, y}, nullptr};
      }
      case ExprKind::kBinary:
        return CompileBinary(e);
      case ExprKind::kCall:
        if (e.is_aggregate) return CompileAggCall(e);
        return CompileBuiltin(e);
    }
    return Status::Internal("vm: unreachable expr kind");
  }

  Result<CVal> CompileBinary(const Expr& e) {
    SGL_ASSIGN_OR_RETURN(CVal l, CompileExpr(*e.args[0]));
    SGL_ASSIGN_OR_RETURN(CVal r, CompileExpr(*e.args[1]));
    if (l.IsScalar() && r.IsScalar()) {
      Op op;
      switch (e.op) {
        case BinaryOp::kAdd: op = Op::kAdd; break;
        case BinaryOp::kSub: op = Op::kSub; break;
        case BinaryOp::kMul: op = Op::kMul; break;
        case BinaryOp::kDiv: op = Op::kDiv; break;
        case BinaryOp::kMod: op = Op::kMod; break;
        default: return Status::Internal("vm: unreachable binary op");
      }
      return CVal{ValueKind::kScalar,
                  {EmitBin(op, l.regs[0], r.regs[0], e.line)},
                  nullptr};
    }
    if (l.ConvertibleToVec() && r.ConvertibleToVec() &&
        (e.op == BinaryOp::kAdd || e.op == BinaryOp::kSub)) {
      Op op = e.op == BinaryOp::kAdd ? Op::kAdd : Op::kSub;
      return CVal{ValueKind::kVec2,
                  {EmitBin(op, l.regs[0], r.regs[0], e.line),
                   EmitBin(op, l.regs[1], r.regs[1], e.line)},
                  nullptr};
    }
    if (e.op == BinaryOp::kMul) {
      const CVal* vec = nullptr;
      const CVal* s = nullptr;
      if (l.ConvertibleToVec() && r.IsScalar()) {
        vec = &l;
        s = &r;
      } else if (l.IsScalar() && r.ConvertibleToVec()) {
        vec = &r;
        s = &l;
      }
      if (vec != nullptr) {
        return CVal{ValueKind::kVec2,
                    {EmitBin(Op::kMul, vec->regs[0], s->regs[0], e.line),
                     EmitBin(Op::kMul, vec->regs[1], s->regs[0], e.line)},
                    nullptr};
      }
    }
    if (e.op == BinaryOp::kDiv && l.ConvertibleToVec() && r.IsScalar()) {
      return CVal{ValueKind::kVec2,
                  {EmitBin(Op::kDiv, l.regs[0], r.regs[0], e.line),
                   EmitBin(Op::kDiv, l.regs[1], r.regs[0], e.line)},
                  nullptr};
    }
    return Bail("type error in arithmetic", e.line);
  }

  Result<CVal> CompileAggCall(const Expr& e) {
    if (in_scan_) {
      // The analyzer rejects nested aggregates; stay conservative here.
      return Bail("nested aggregate probe", e.line);
    }
    const AggregateDecl& decl = script_->program.aggregates[e.call_id];
    Instr in;
    in.op = Op::kAgg;
    in.aux = e.call_id;
    in.mask = cur_mask_;
    in.line = e.line;
    for (size_t i = 1; i < e.args.size(); ++i) {
      SGL_ASSIGN_OR_RETURN(int32_t reg,
                           CompileScalar(*e.args[i], "aggregate arguments"));
      in.args.push_back(reg);
    }
    in.c = static_cast<int32_t>(in.args.size());
    const bool is_row = decl.ReturnsRow() || decl.items.size() > 1;
    std::shared_ptr<const RowLayout> layout = script_->agg_layouts[e.call_id];
    const int32_t nout =
        is_row ? static_cast<int32_t>(layout->fields.size()) : 1;
    const int32_t dst0 = prog_->num_regs;
    in.dst = dst0;
    prog_->num_regs += nout;
    in.b = nout;
    body_.push_back(std::move(in));
    CVal out;
    out.kind = is_row ? ValueKind::kRow : ValueKind::kScalar;
    for (int32_t k = 0; k < nout; ++k) out.regs.push_back(dst0 + k);
    if (is_row) out.layout = std::move(layout);
    return out;
  }

  Result<CVal> CompileBuiltin(const Expr& e) {
    const BuiltinFn fn = static_cast<BuiltinFn>(e.call_id);
    std::vector<int32_t> args;
    args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) {
      SGL_ASSIGN_OR_RETURN(int32_t reg,
                           CompileScalar(*a, "builtin arguments"));
      args.push_back(reg);
    }
    switch (fn) {
      case BuiltinFn::kAbs:
        return CVal{ValueKind::kScalar,
                    {EmitUn(Op::kAbs, args[0], e.line)},
                    nullptr};
      case BuiltinFn::kMin:
        return CVal{ValueKind::kScalar,
                    {EmitBin(Op::kMin2, args[0], args[1], e.line)},
                    nullptr};
      case BuiltinFn::kMax:
        return CVal{ValueKind::kScalar,
                    {EmitBin(Op::kMax2, args[0], args[1], e.line)},
                    nullptr};
      case BuiltinFn::kSqrt:
        return CVal{ValueKind::kScalar,
                    {EmitUn(Op::kSqrt, args[0], e.line)},
                    nullptr};
      case BuiltinFn::kFloor:
        return CVal{ValueKind::kScalar,
                    {EmitUn(Op::kFloor, args[0], e.line)},
                    nullptr};
      case BuiltinFn::kCeil:
        return CVal{ValueKind::kScalar,
                    {EmitUn(Op::kCeil, args[0], e.line)},
                    nullptr};
      case BuiltinFn::kClamp: {
        double v = 0.0;
        double lo = 0.0;
        double hi = 0.0;
        if (KnownConst(args[0], &v) && KnownConst(args[1], &lo) &&
            KnownConst(args[2], &hi) && lo <= hi) {
          return CVal{ValueKind::kScalar,
                      {ConstReg(std::clamp(v, lo, hi))},
                      nullptr};
        }
        Instr in;
        in.op = Op::kClamp;
        in.dst = NewReg();
        in.a = args[0];
        in.b = args[1];
        in.c = args[2];
        in.line = e.line;
        body_.push_back(in);
        return CVal{ValueKind::kScalar, {in.dst}, nullptr};
      }
      case BuiltinFn::kRandom: {
        if (in_scan_ && !scan_allow_random_) {
          // The analyzer rejects random() in aggregates; stay conservative.
          return Bail("random() inside an aggregate", e.line);
        }
        Instr in;
        in.op = Op::kRandom;
        in.dst = NewReg();
        in.a = args[0];
        in.mask = cur_mask_;
        in.line = e.line;
        body_.push_back(in);
        return CVal{ValueKind::kScalar, {in.dst}, nullptr};
      }
    }
    return Status::Internal("vm: unreachable builtin");
  }

  /// Lower a condition to a mask register. `cur_mask_` is the error
  /// context: within and/or it is refined to exactly the lanes on which
  /// the interpreter's short-circuit evaluation would reach the operand,
  /// so runtime error flags (div-by-zero inside a condition) fire for
  /// precisely the units the interpreter would fail on.
  Result<int32_t> CompileCond(const Cond& c) {
    switch (c.kind) {
      case CondKind::kTrue:
        return 0;  // mask 0: all lanes active
      case CondKind::kCompare: {
        SGL_ASSIGN_OR_RETURN(int32_t l,
                             CompileScalar(*c.lhs, "comparison operands"));
        SGL_ASSIGN_OR_RETURN(int32_t r,
                             CompileScalar(*c.rhs, "comparison operands"));
        Instr in;
        in.op = Op::kCmp;
        in.cmp = c.op;
        in.dst = NewMask();
        in.a = l;
        in.b = r;
        in.line = c.line;
        body_.push_back(in);
        return in.dst;
      }
      case CondKind::kNot: {
        SGL_ASSIGN_OR_RETURN(int32_t inner, CompileCond(*c.left));
        return EmitMask(Op::kMaskNot, inner, -1);
      }
      case CondKind::kAnd: {
        SGL_ASSIGN_OR_RETURN(int32_t l, CompileCond(*c.left));
        const int32_t saved = cur_mask_;
        cur_mask_ = EmitMask(Op::kMaskAnd, saved, l);
        auto r = CompileCond(*c.right);
        cur_mask_ = saved;
        if (!r.ok()) return r.status();
        return EmitMask(Op::kMaskAnd, l, r.value());
      }
      case CondKind::kOr: {
        SGL_ASSIGN_OR_RETURN(int32_t l, CompileCond(*c.left));
        const int32_t saved = cur_mask_;
        cur_mask_ = EmitMask(Op::kMaskAndNot, saved, l);
        auto r = CompileCond(*c.right);
        cur_mask_ = saved;
        if (!r.ok()) return r.status();
        return EmitMask(Op::kMaskOr, l, r.value());
      }
    }
    return Status::Internal("vm: unreachable cond kind");
  }

  /// Flag every binding made since `depth` as conditional: it exists on
  /// the interpreter's stack only for lanes that took the branch.
  void MarkConditionalFrom(size_t depth) {
    std::vector<LocalEntry>& locals = frames_.back().locals;
    for (size_t i = depth; i < locals.size(); ++i) {
      locals[i].conditional = true;
    }
  }

  Status CompileStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kLet: {
        SGL_ASSIGN_OR_RETURN(CVal v, CompileExpr(*s.let_value));
        frames_.back().locals.push_back(
            LocalEntry{s.let_name, std::move(v), false});
        return Status::OK();
      }
      case StmtKind::kIf: {
        SGL_ASSIGN_OR_RETURN(int32_t cond, CompileCond(*s.cond));
        const int32_t saved = cur_mask_;
        cur_mask_ = EmitMask(Op::kMaskAnd, saved, cond);
        size_t depth = frames_.back().locals.size();
        Status st = CompileStmt(*s.then_branch);
        MarkConditionalFrom(depth);
        cur_mask_ = saved;
        SGL_RETURN_NOT_OK(st);
        if (s.else_branch != nullptr) {
          cur_mask_ = EmitMask(Op::kMaskAndNot, saved, cond);
          depth = frames_.back().locals.size();
          st = CompileStmt(*s.else_branch);
          MarkConditionalFrom(depth);
          cur_mask_ = saved;
          SGL_RETURN_NOT_OK(st);
        }
        return Status::OK();
      }
      case StmtKind::kBlock: {
        const size_t mark = frames_.back().locals.size();
        for (const StmtPtr& child : s.body) {
          SGL_RETURN_NOT_OK(CompileStmt(*child));
        }
        frames_.back().locals.resize(mark);
        return Status::OK();
      }
      case StmtKind::kPerform: {
        std::vector<CVal> argv;
        argv.reserve(s.args.size());
        for (size_t i = 1; i < s.args.size(); ++i) {
          SGL_ASSIGN_OR_RETURN(CVal v, CompileExpr(*s.args[i]));
          argv.push_back(std::move(v));
        }
        if (s.target_action >= 0) {
          PerformSig sig;
          sig.action_index = s.target_action;
          Instr in;
          in.op = Op::kPerform;
          in.mask = cur_mask_;
          in.line = s.line;
          for (const CVal& v : argv) {
            PerformArg pa;
            pa.kind = v.kind;
            pa.nregs = static_cast<int32_t>(v.regs.size());
            pa.layout = v.layout;
            sig.args.push_back(std::move(pa));
            in.args.insert(in.args.end(), v.regs.begin(), v.regs.end());
          }
          in.aux = static_cast<int32_t>(prog_->performs.size());
          prog_->performs.push_back(std::move(sig));
          body_.push_back(std::move(in));
          return Status::OK();
        }
        // User function: inline under the caller's mask. The analyzer
        // guarantees the call graph is acyclic, so this terminates.
        const FunctionDecl& fn =
            script_->program.functions[s.target_function];
        Frame frame;
        frame.u_name = &fn.params[0];
        for (size_t i = 1; i < fn.params.size(); ++i) {
          frame.locals.push_back(
              LocalEntry{fn.params[i], std::move(argv[i - 1]), false});
        }
        frames_.push_back(std::move(frame));
        Status st = CompileStmt(*fn.body);
        frames_.pop_back();
        return st;
      }
    }
    return Status::Internal("vm: unreachable stmt kind");
  }

  const Script* script_;
  std::unique_ptr<CompiledProgram> prog_;
  std::vector<Instr> prologue_;  // hoisted kConst loads
  std::vector<Instr> body_;
  std::unordered_map<uint64_t, int32_t> const_regs_;  // value bits -> reg
  std::unordered_map<int32_t, double> reg_const_;     // reg -> known value
  std::unordered_map<AttrId, int32_t> attr_regs_;     // row-attr load CSE
  std::vector<Frame> frames_;
  int32_t cur_mask_ = 0;
  // Scan mode (RunScan / RunActionScan): the scanned row variable (per
  // update for actions), the probing/performing unit variable, whether
  // random() is legal (action effect values only), and the probe-uniform
  // registers for the unit's attributes.
  bool in_scan_ = false;
  bool scan_allow_random_ = false;
  const std::string* scan_row_var_ = nullptr;
  const std::string* scan_u_var_ = nullptr;
  std::vector<std::pair<AttrId, int32_t>> scan_u_attrs_;
  std::unordered_map<AttrId, int32_t> scan_u_attr_regs_;
};

}  // namespace

Result<std::unique_ptr<CompiledProgram>> CompileProgram(const Script& script) {
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<CompiledProgram> prog,
                       Compiler(script).Run());
  // Each aggregate declaration gets its own scan compilation (fresh
  // compiler: register spaces are independent). A declined scan is not an
  // error — the kAgg opcode probes that declaration through the
  // interpreter and Explain reports why.
  const size_t num_aggs = script.program.aggregates.size();
  prog->agg_scans.resize(num_aggs);
  prog->agg_notes.resize(num_aggs);
  for (size_t i = 0; i < num_aggs; ++i) {
    auto scan = Compiler(script).RunScan(static_cast<int32_t>(i));
    if (scan.ok()) {
      prog->agg_scans[i] = scan.MoveValue();
    } else {
      prog->agg_notes[i] = scan.status().message();
    }
  }
  // Likewise for actions: the perform flush's naive effect application.
  const size_t num_actions = script.program.actions.size();
  prog->action_scans.resize(num_actions);
  prog->action_notes.resize(num_actions);
  for (size_t i = 0; i < num_actions; ++i) {
    auto scan = Compiler(script).RunActionScan(static_cast<int32_t>(i));
    if (scan.ok()) {
      prog->action_scans[i] = scan.MoveValue();
    } else {
      prog->action_notes[i] = scan.status().message();
    }
  }
  // Standalone programs count executions against a private registry;
  // SimulationBuilder rebinds into the simulation's (all still zero).
  prog->own_metrics = std::make_unique<obs::MetricsRegistry>();
  prog->BindMetrics(prog->own_metrics.get(), "vm.", obs::kMetricNone);
  return prog;
}

}  // namespace vm
}  // namespace sgl
