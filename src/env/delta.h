// DeltaRelation: environment tables as values, and the relational ⊕.
//
// This is the literal Section 4.2 formalization: an SGL action function
// returns an environment table E_u; tables are multisets (duplicate keys
// allowed before combination); ⊕R groups by key (the const attributes are
// functionally dependent on it) and folds every effect attribute with its
// tagged aggregate. The simulation engine itself uses the incremental
// EffectBuffer; this representation exists for the set-at-a-time algebra
// executor and for property tests of the ⊕ laws (associativity,
// commutativity, idempotence, Eq. (3)).
#ifndef SGL_ENV_DELTA_H_
#define SGL_ENV_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/effect_buffer.h"
#include "env/table.h"

namespace sgl {

/// One tuple of a delta relation: a key plus all non-key attribute values.
/// For kSet attributes, `set_prios` carries the effect priority parallel to
/// the value (priority -inf encodes "no set effect in this tuple").
struct DeltaRow {
  int64_t key = 0;
  std::vector<double> values;     // attrs 1..k in schema order
  std::vector<double> set_prios;  // parallel to kSet attrs, in schema order
};

/// A multiset of environment tuples over a full schema.
class DeltaRelation {
 public:
  explicit DeltaRelation(const Schema* schema);

  const Schema& schema() const { return *schema_; }
  int64_t NumRows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<DeltaRow>& rows() const { return rows_; }

  /// Append a tuple. `values` has NumAttrs()-1 entries; set-effect
  /// priorities default to -inf (no effect).
  void Add(int64_t key, std::vector<double> values);
  void Add(DeltaRow row) { rows_.push_back(std::move(row)); }

  /// Number of kSet attributes in the schema (length of set_prios).
  int32_t NumSetAttrs() const { return num_set_attrs_; }

  /// Multiset union ⊎ (concatenation).
  static DeltaRelation UnionAll(const DeltaRelation& a, const DeltaRelation& b);

  /// The combination operator ⊕R of Section 4.2: group by key, assert the
  /// const attributes agree within each group, fold effect attributes.
  /// The result has one tuple per distinct key, ordered by key.
  DeltaRelation Combine() const;

  /// Lift a whole environment table into a delta relation (the `⊕ E` of
  /// Eq. (6) combines the scripts' output with E itself).
  static DeltaRelation FromTable(const EnvironmentTable& table);

  /// Stream this relation's effect contributions into an EffectBuffer
  /// (rows whose keys are missing from the table are ignored — they
  /// belong to units that died in an earlier tick).
  void FoldInto(const EnvironmentTable& table, EffectBuffer* buffer) const;

  /// Multiset equality up to row order (used by tests). O(n log n).
  bool EqualsUnordered(const DeltaRelation& other) const;

  std::string ToString(int32_t max_rows = 10) const;

 private:
  const Schema* schema_;
  std::vector<DeltaRow> rows_;
  int32_t num_set_attrs_ = 0;
  std::vector<int32_t> set_index_of_attr_;  // AttrId -> index into set_prios
};

}  // namespace sgl

#endif  // SGL_ENV_DELTA_H_
