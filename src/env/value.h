// Script-level values.
//
// SGL terms evaluate to either a scalar or a 2-vector (Section 3.2 uses
// vector-valued terms such as `(u.posx, u.posy) - CentroidOfEnemyUnits(..)`).
// Environment columns always store scalars; vectors exist only transiently
// inside term evaluation and as the result of tuple-aggregates (e.g. the
// centroid aggregate of Figure 4 returns `(avg(x), avg(y))`).
#ifndef SGL_ENV_VALUE_H_
#define SGL_ENV_VALUE_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace sgl {

/// A 2-D vector value.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2() = default;
  Vec2(double xv, double yv) : x(xv), y(yv) {}

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2 operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  double Norm() const { return std::sqrt(x * x + y * y); }
  double SquaredNorm() const { return x * x + y * y; }
};

/// Field names of a row value; shared by all rows an aggregate returns.
struct RowLayout {
  std::vector<std::string> fields;

  int32_t Find(const std::string& name) const {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] == name) return static_cast<int32_t>(i);
    }
    return -1;
  }
};

/// A named tuple of scalars — the result of a row-returning aggregate
/// (argmin/argmax/nearest) or of a multi-item select list.
struct RowValue {
  std::shared_ptr<const RowLayout> layout;
  std::vector<double> vals;
};

/// Tag for Value's active member.
enum class ValueKind : uint8_t { kScalar, kVec2, kRow };

/// A scalar, Vec2, or row value. Cheap to copy (rows are shared).
class Value {
 public:
  Value() : kind_(ValueKind::kScalar), scalar_(0.0) {}
  Value(double v) : kind_(ValueKind::kScalar), scalar_(v) {}  // NOLINT
  Value(Vec2 v) : kind_(ValueKind::kVec2), vec_(v) {}         // NOLINT
  Value(std::shared_ptr<const RowValue> row)                  // NOLINT
      : kind_(ValueKind::kRow), row_(std::move(row)) {}

  ValueKind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == ValueKind::kScalar; }
  bool is_vec() const { return kind_ == ValueKind::kVec2; }
  bool is_row() const { return kind_ == ValueKind::kRow; }

  double scalar() const { return scalar_; }
  const Vec2& vec() const { return vec_; }
  const RowValue& row() const { return *row_; }

  /// A two-field row behaves as a Vec2 in arithmetic (the centroid idiom:
  /// `(u.posx, u.posy) - CentroidOfEnemyUnits(u, r)`).
  bool ConvertibleToVec() const {
    return is_vec() || (is_row() && row_->vals.size() == 2);
  }
  Vec2 AsVec() const {
    if (is_vec()) return vec_;
    return Vec2{row_->vals[0], row_->vals[1]};
  }

  /// Scalars compare equal iff equal; vectors componentwise; rows by value.
  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    if (is_scalar()) return scalar_ == o.scalar_;
    if (is_vec()) return vec_ == o.vec_;
    return row_->vals == o.row_->vals;
  }

  std::string ToString() const {
    if (is_scalar()) return FormatDouble(scalar_, 6);
    if (is_vec()) {
      return "(" + FormatDouble(vec_.x, 6) + ", " + FormatDouble(vec_.y, 6) +
             ")";
    }
    std::string out = "{";
    for (size_t i = 0; i < row_->vals.size(); ++i) {
      if (i > 0) out += ", ";
      out += row_->layout->fields[i] + "=" + FormatDouble(row_->vals[i], 6);
    }
    return out + "}";
  }

 private:
  ValueKind kind_;
  double scalar_ = 0.0;
  Vec2 vec_;
  std::shared_ptr<const RowValue> row_;
};

}  // namespace sgl

#endif  // SGL_ENV_VALUE_H_
