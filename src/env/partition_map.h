// Row → shard-worker assignment maps for the sharded tick pipeline.
//
// Two partitioning schemes, both producing the same structure: an owner
// per row (exactly one worker evaluates each unit's decisions) and a
// per-row membership bitmask (which workers hold a copy of the row in
// their local tables — the owner plus any worker that needs it as a
// read-only ghost).
//
//  * Spatial stripes: the world's x axis splits into `num_shards` equal
//    stripes; a worker owns the rows whose posx falls in its stripe and
//    ghosts every row within `margin` of it. Valid only when script reach
//    analysis (opt/reach.h) bounded every aggregate probe and action
//    footprint by that margin.
//  * Replicated: every worker holds every row (ghost = rest of world) and
//    owns a contiguous block of global row indices. Always correct; this
//    is the fallback for unbounded scripts and non-spatial worlds, and
//    still splits decision evaluation S ways.
#ifndef SGL_ENV_PARTITION_MAP_H_
#define SGL_ENV_PARTITION_MAP_H_

#include <cstdint>
#include <vector>

#include "env/table.h"

namespace sgl {

/// The materialized assignment for one table state. Rebuilt on structural
/// changes and whenever a dirty row's stripe membership drifts.
struct ShardAssignment {
  int32_t num_shards = 1;
  std::vector<int32_t> owner;    // per global row
  std::vector<uint64_t> member;  // per global row; bit w = in worker w
};

/// Owner stripe of `posx` for an S-way split of [0, world_width).
int32_t StripeOwner(double posx, double world_width, int32_t num_shards);

/// Membership mask of `posx`: the owner stripe plus every stripe whose
/// `margin`-widened extent contains it.
uint64_t StripeMembership(double posx, double world_width,
                          int32_t num_shards, double margin);

/// Assign every row of `table` by its posx stripe.
ShardAssignment BuildSpatialStripes(const EnvironmentTable& table,
                                    AttrId posx, double world_width,
                                    int32_t num_shards, double margin);

/// Every worker holds every row; owner blocks are contiguous in row order
/// so per-worker effect journals concatenate into exact sequential order.
ShardAssignment BuildReplicated(const EnvironmentTable& table,
                                int32_t num_shards);

}  // namespace sgl

#endif  // SGL_ENV_PARTITION_MAP_H_
