// EffectBuffer: the engine's incremental implementation of ⊕.
//
// Section 2.2 / 4.2: all actions in a tick act simultaneously; their
// effects are combined per unit with sum (stackable), max/min
// (nonstackable) or maximum-priority set. The formal model materializes an
// environment table per action and folds them with ⊕; the engine instead
// streams every effect contribution into this buffer, which is the same
// fold computed incrementally (⊕ is associative and commutative, Eq. (3),
// so the two are equivalent — a property the test suite checks against the
// relational implementation in delta.h).
//
// The buffer is row-aligned with the table at Begin() time; the base
// contribution of each unit's own row in E (the `⊕ E` of Eq. (6)) is the
// snapshot taken by Begin().
#ifndef SGL_ENV_EFFECT_BUFFER_H_
#define SGL_ENV_EFFECT_BUFFER_H_

#include <cstdint>
#include <vector>

#include "env/table.h"

namespace sgl {

/// Write-side interface of the effect fold: everything a unit's script
/// evaluation may do to the world this tick. The interpreter and action
/// sinks stream contributions through this seam, which is what lets the
/// parallel decision phase substitute a per-worker exec::EffectShard
/// (an operation log replayed in canonical order) for the real buffer.
class EffectSink {
 public:
  virtual ~EffectSink() = default;

  /// Fold `value` into (row, attr) under the attribute's combine type.
  /// `attr` must be a kSum/kMax/kMin effect attribute.
  virtual void Accumulate(RowId row, AttrId attr, double value) = 0;

  /// Fold a set-effect: highest priority wins; ties broken by larger value
  /// so the result is independent of accumulation order.
  virtual void AccumulateSet(RowId row, AttrId attr, double value,
                             double priority) = 0;
};

/// Accumulates per-unit effect values for one clock tick.
class EffectBuffer : public EffectSink {
 public:
  EffectBuffer() = default;

  /// Snapshot the table's current effect columns as the base contribution
  /// and reset all set-effect priorities.
  void Begin(const EnvironmentTable& table);

  void Accumulate(RowId row, AttrId attr, double value) override {
    Slot& s = slots_[attr_slot_[attr]];
    s.acc[row] = CombineFold(s.type, s.acc[row], value);
  }

  void AccumulateSet(RowId row, AttrId attr, double value,
                     double priority) override {
    Slot& s = slots_[attr_slot_[attr]];
    double& p = s.prio[row];
    double& v = s.acc[row];
    if (priority > p || (priority == p && value > v)) {
      p = priority;
      v = value;
    }
  }

  /// True if a set-effect was recorded for (row, attr).
  bool HasSet(RowId row, AttrId attr) const {
    const Slot& s = slots_[attr_slot_[attr]];
    return s.prio[row] > -kInf;
  }

  /// Current accumulated value (after Begin and any Accumulate calls).
  double Get(RowId row, AttrId attr) const {
    return slots_[attr_slot_[attr]].acc[row];
  }

  /// Write the accumulated values back into the table's effect columns.
  /// Set-effects with no contribution write 0 (their untouched encoding).
  void ApplyTo(EnvironmentTable* table) const;

  int32_t num_rows() const { return num_rows_; }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Slot {
    AttrId attr = Schema::kInvalidAttr;
    CombineType type = CombineType::kSum;
    std::vector<double> acc;
    std::vector<double> prio;  // kSet only
  };

  std::vector<Slot> slots_;
  std::vector<int32_t> attr_slot_;  // AttrId -> index into slots_, or -1
  int32_t num_rows_ = 0;
};

}  // namespace sgl

#endif  // SGL_ENV_EFFECT_BUFFER_H_
