// The environment table E: one row per unit, columnar storage.
//
// The paper models game state as a single relation E (Section 4). We store
// it column-wise: aggregate-index construction (Section 5.3) consumes whole
// columns, and the decision phase touches only a few attributes per unit,
// so a columnar layout is both the natural database choice and the faster
// one. All attribute values are doubles; unit keys are int64 and unique.
// Simulations that want bit-exact reproducibility across evaluators keep
// aggregate inputs integer-valued (see DESIGN.md "Determinism").
#ifndef SGL_ENV_TABLE_H_
#define SGL_ENV_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "env/schema.h"
#include "util/status.h"

namespace sgl {

/// Row index within an EnvironmentTable. Invalidated by RemoveIf.
using RowId = int32_t;

/// The table's record of what changed since the last ClearChanges() — the
/// tick's delta log, consumed by the adaptive evaluator to decide between
/// rebuilding an index family from scratch and applying the delta to it.
///
/// `dirty_rows` lists each written row once, in first-write order;
/// `attr_mask(row)` says which attributes of it changed (attribute a maps
/// to bit min(a, 63), so schemas wider than 64 attributes stay correct,
/// merely coarser). `structural` is set by any row addition or removal:
/// RowIds are no longer comparable across the change window, so consumers
/// must fall back to a full rebuild.
struct TableChanges {
  bool structural = false;
  std::vector<RowId> dirty_rows;

  uint64_t attr_mask(RowId row) const {
    return row < static_cast<RowId>(masks.size()) ? masks[row] : 0;
  }

  static uint64_t BitOf(AttrId attr) {
    return uint64_t{1} << (attr < 63 ? attr : 63);
  }

  // Implementation state (public for EnvironmentTable's inline writers).
  std::vector<uint64_t> masks;  // indexed by row; 0 = clean
};

/// Observer of individual table mutations, keyed by unit key — the
/// storage layer's WAL record source (src/storage/world_store.h). Unlike
/// TableChanges (row-indexed, coarsened to one mask per row), listener
/// events carry unit keys and fire in mutation order, so structural ops
/// replay exactly and cell deltas survive RemoveIf's row compaction.
/// At most one listener per table; Clone() never copies it.
class TableDeltaListener {
 public:
  virtual ~TableDeltaListener() = default;

  /// A Set (or ResetEffects) changed the stored value of (key, attr).
  virtual void OnCellWrite(int64_t key, AttrId attr) = 0;

  /// A row was appended at `row` with `values` (attrs 1..k).
  virtual void OnAddRow(int64_t key, RowId row,
                        const std::vector<double>& values) = 0;

  /// RemoveIf dropped `keys` (ascending pre-compaction row order);
  /// `first_row` is the smallest removed row index before compaction.
  virtual void OnRemoveRows(RowId first_row,
                            const std::vector<int64_t>& keys) = 0;
};

/// Columnar multiset of unit tuples with unique keys.
class EnvironmentTable {
 public:
  explicit EnvironmentTable(Schema schema);

  const Schema& schema() const { return schema_; }
  int32_t NumRows() const { return static_cast<int32_t>(keys_.size()); }

  /// Append a unit with an auto-assigned key. `values` holds attributes
  /// 1..k (everything but the key), in schema order. Effect attributes are
  /// normally passed as their combine identity. Returns the new key.
  Result<int64_t> AddRow(const std::vector<double>& values);

  /// Append a unit with an explicit key (must be unused).
  Status AddRowWithKey(int64_t key, const std::vector<double>& values);

  int64_t KeyAt(RowId row) const { return keys_[row]; }

  /// Row holding `key`, or -1.
  RowId RowOf(int64_t key) const {
    auto it = key_to_row_.find(key);
    return it == key_to_row_.end() ? -1 : it->second;
  }
  bool HasKey(int64_t key) const { return RowOf(key) >= 0; }

  /// Read attribute `attr` of row `row`. Reading attr 0 returns the key.
  double Get(RowId row, AttrId attr) const {
    return attr == kKeyAttrId ? static_cast<double>(keys_[row])
                              : cols_[attr - 1][row];
  }

  /// Write a non-key attribute. With change tracking enabled, a write that
  /// actually changes the stored value marks (row, attr) dirty; a delta
  /// listener additionally observes it keyed by unit key.
  void Set(RowId row, AttrId attr, double value) {
    double& slot = cols_[attr - 1][row];
    if (watched_ && slot != value) NoteWrite(row, attr);
    slot = value;
  }

  /// Column accessor for index builders (attr must not be the key).
  const std::vector<double>& Column(AttrId attr) const {
    return cols_[attr - 1];
  }
  const std::vector<int64_t>& Keys() const { return keys_; }

  /// Reset every effect attribute to its combine identity — the start-of-
  /// tick initialization of the auxiliary attributes (Section 4.3).
  void ResetEffects();

  /// Remove all rows where `pred(row)` is true; compacts in place and
  /// preserves the relative order of survivors. Returns removed count.
  int32_t RemoveIf(const std::function<bool(RowId)>& pred);

  /// Deep copy (used by the equivalence test harness). The copy never
  /// inherits the delta listener: a listener observes exactly one live
  /// table, and clones are scratch copies by construction.
  EnvironmentTable Clone() const {
    EnvironmentTable copy = *this;
    copy.listener_ = nullptr;
    copy.watched_ = copy.tracking_;
    return copy;
  }

  /// Exact equality of schema, keys and every attribute value.
  bool Equals(const EnvironmentTable& other) const;

  /// First row (if any) where tables differ, for test diagnostics.
  std::string DiffString(const EnvironmentTable& other) const;

  /// Render up to `max_rows` rows for debugging.
  std::string ToString(int32_t max_rows = 10) const;

  // --- change tracking (the adaptive evaluator's delta log) ---------------

  /// Start recording writes. Until the first ClearChanges() the log reports
  /// a structural change, so consumers begin from a full rebuild.
  void EnableChangeTracking();
  bool change_tracking_enabled() const { return tracking_; }

  /// What changed since the last ClearChanges() (empty when disabled).
  const TableChanges& changes() const { return changes_; }

  /// Forget the recorded changes (end of the consumer's change window).
  void ClearChanges();

  /// Force the next change window to report a structural change (used when
  /// the table is wholesale replaced, e.g. snapshot restore).
  void MarkStructuralChange() {
    if (tracking_) changes_.structural = true;
  }

  /// Merge `mask` into `row`'s dirty mask without writing any value,
  /// appending the row to the dirty list on first mark. Shard workers use
  /// this to mirror the authoritative table's change log onto their local
  /// copies bit for bit (same rows, same order, same masks), so per-worker
  /// adaptive cost decisions see exactly the churn the single-table engine
  /// would. No-op when tracking is disabled or `mask` is zero.
  void MarkRowDirty(RowId row, uint64_t mask);

  // --- delta listener (the storage layer's WAL feed) ----------------------

  /// Attach (or with nullptr detach) the table's single delta listener.
  void SetDeltaListener(TableDeltaListener* listener) {
    listener_ = listener;
    watched_ = tracking_ || listener_ != nullptr;
  }
  TableDeltaListener* delta_listener() const { return listener_; }

  /// The next auto-assigned key. Exposed so durable storage can carry it
  /// through checkpoints: RemoveIf never lowers it, so rebuilding a table
  /// from its rows alone would under-set it and desynchronize AddRow.
  int64_t next_key() const { return next_key_; }
  void SetNextKey(int64_t next_key) { next_key_ = next_key; }

 private:
  void NoteDirty(RowId row, AttrId attr);

  /// Slow path of Set for a value-changing write: dirty-mark and/or
  /// notify the listener, whichever of the two is active.
  void NoteWrite(RowId row, AttrId attr);

  Schema schema_;
  std::vector<int64_t> keys_;
  std::vector<std::vector<double>> cols_;  // cols_[i] is attribute i+1
  std::unordered_map<int64_t, RowId> key_to_row_;
  int64_t next_key_ = 0;
  bool tracking_ = false;
  bool watched_ = false;  // tracking_ || listener_ — the Set hot-path gate
  TableDeltaListener* listener_ = nullptr;
  TableChanges changes_;
};

}  // namespace sgl

#endif  // SGL_ENV_TABLE_H_
