#include "env/effect_buffer.h"

namespace sgl {

void EffectBuffer::Begin(const EnvironmentTable& table) {
  const Schema& schema = table.schema();
  num_rows_ = table.NumRows();
  slots_.clear();
  attr_slot_.assign(schema.NumAttrs(), -1);
  for (AttrId a : schema.EffectAttrs()) {
    Slot s;
    s.attr = a;
    s.type = schema.attr(a).combine;
    s.acc = table.Column(a);  // base contribution of E's own rows
    if (s.type == CombineType::kSet) {
      // A set-effect has no base contribution; "no effect" is encoded as
      // priority -inf, and ApplyTo materializes untouched slots as 0.
      s.prio.assign(num_rows_, -kInf);
      s.acc.assign(num_rows_, 0.0);
    }
    attr_slot_[a] = static_cast<int32_t>(slots_.size());
    slots_.push_back(std::move(s));
  }
}

void EffectBuffer::ApplyTo(EnvironmentTable* table) const {
  for (const Slot& s : slots_) {
    for (RowId r = 0; r < num_rows_; ++r) {
      table->Set(r, s.attr, s.acc[r]);
    }
  }
}

}  // namespace sgl
