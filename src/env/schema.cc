#include "env/schema.h"

#include <algorithm>

namespace sgl {

const char* CombineTypeName(CombineType type) {
  switch (type) {
    case CombineType::kConst:
      return "const";
    case CombineType::kSum:
      return "sum";
    case CombineType::kMax:
      return "max";
    case CombineType::kMin:
      return "min";
    case CombineType::kSet:
      return "set";
  }
  return "?";
}

double CombineIdentity(CombineType type) {
  switch (type) {
    case CombineType::kSum:
      return 0.0;
    case CombineType::kMax:
      return -std::numeric_limits<double>::infinity();
    case CombineType::kMin:
      return std::numeric_limits<double>::infinity();
    case CombineType::kConst:
    case CombineType::kSet:
      return 0.0;
  }
  return 0.0;
}

double CombineFold(CombineType type, double acc, double next) {
  switch (type) {
    case CombineType::kSum:
      return acc + next;
    case CombineType::kMax:
      return std::max(acc, next);
    case CombineType::kMin:
      return std::min(acc, next);
    case CombineType::kConst:
    case CombineType::kSet:
      return next;  // not reachable through EffectBuffer; kSet folds pairs
  }
  return next;
}

Schema::Schema() {
  attrs_.push_back(Attribute{"key", CombineType::kConst});
  by_name_["key"] = kKeyAttrId;
}

Result<AttrId> Schema::AddAttribute(const std::string& name,
                                    CombineType combine) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("attribute '", name,
                                 "' already present in schema");
  }
  AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.push_back(Attribute{name, combine});
  by_name_[name] = id;
  return id;
}

AttrId Schema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidAttr : it->second;
}

Result<AttrId> Schema::Require(const std::string& name) const {
  AttrId id = Find(name);
  if (id == kInvalidAttr) {
    return Status::Invalid("schema has no attribute '", name,
                           "'; schema is ", ToString());
  }
  return id;
}

std::vector<AttrId> Schema::EffectAttrs() const {
  std::vector<AttrId> out;
  for (AttrId i = 0; i < NumAttrs(); ++i) {
    if (attrs_[i].combine != CombineType::kConst) out.push_back(i);
  }
  return out;
}

std::vector<AttrId> Schema::StateAttrs() const {
  std::vector<AttrId> out;
  for (AttrId i = 0; i < NumAttrs(); ++i) {
    if (attrs_[i].combine == CombineType::kConst) out.push_back(i);
  }
  return out;
}

bool Schema::operator==(const Schema& o) const {
  if (attrs_.size() != o.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != o.attrs_[i].name ||
        attrs_[i].combine != o.attrs_[i].combine) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "E(";
  for (AttrId i = 0; i < NumAttrs(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    if (attrs_[i].combine != CombineType::kConst) {
      out += ":";
      out += CombineTypeName(attrs_[i].combine);
    }
  }
  out += ")";
  return out;
}

}  // namespace sgl
