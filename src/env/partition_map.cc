#include "env/partition_map.h"

#include <algorithm>

namespace sgl {

int32_t StripeOwner(double posx, double world_width, int32_t num_shards) {
  const double width = world_width / num_shards;
  int32_t w = static_cast<int32_t>(posx / width);
  return std::min(std::max(w, 0), num_shards - 1);
}

uint64_t StripeMembership(double posx, double world_width,
                          int32_t num_shards, double margin) {
  const double width = world_width / num_shards;
  uint64_t mask = uint64_t{1} << StripeOwner(posx, world_width, num_shards);
  for (int32_t w = 0; w < num_shards; ++w) {
    const double lo = w * width - margin;
    const double hi = (w + 1) * width + margin;
    if (posx >= lo && posx <= hi) mask |= uint64_t{1} << w;
  }
  return mask;
}

ShardAssignment BuildSpatialStripes(const EnvironmentTable& table,
                                    AttrId posx, double world_width,
                                    int32_t num_shards, double margin) {
  ShardAssignment assign;
  assign.num_shards = num_shards;
  const int32_t n = table.NumRows();
  assign.owner.resize(n);
  assign.member.resize(n);
  for (RowId r = 0; r < n; ++r) {
    const double x = table.Get(r, posx);
    assign.owner[r] = StripeOwner(x, world_width, num_shards);
    assign.member[r] = StripeMembership(x, world_width, num_shards, margin);
  }
  return assign;
}

ShardAssignment BuildReplicated(const EnvironmentTable& table,
                                int32_t num_shards) {
  ShardAssignment assign;
  assign.num_shards = num_shards;
  const int64_t n = table.NumRows();
  assign.owner.resize(n);
  assign.member.resize(n);
  const uint64_t all = num_shards >= 64 ? ~uint64_t{0}
                                        : (uint64_t{1} << num_shards) - 1;
  for (int64_t r = 0; r < n; ++r) {
    // Monotone contiguous blocks of near-equal size.
    assign.owner[r] = static_cast<int32_t>((r * num_shards) / n);
    assign.member[r] = all;
  }
  return assign;
}

}  // namespace sgl
