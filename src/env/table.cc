#include "env/table.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace sgl {

EnvironmentTable::EnvironmentTable(Schema schema) : schema_(std::move(schema)) {
  cols_.resize(schema_.NumAttrs() - 1);
}

Result<int64_t> EnvironmentTable::AddRow(const std::vector<double>& values) {
  int64_t key = next_key_++;
  SGL_RETURN_NOT_OK(AddRowWithKey(key, values));
  return key;
}

Status EnvironmentTable::AddRowWithKey(int64_t key,
                                       const std::vector<double>& values) {
  if (static_cast<int32_t>(values.size()) != schema_.NumAttrs() - 1) {
    return Status::Invalid("AddRow: expected ", schema_.NumAttrs() - 1,
                           " values, got ", values.size());
  }
  if (key_to_row_.count(key) > 0) {
    return Status::AlreadyExists("key ", key, " already present");
  }
  if (tracking_) changes_.structural = true;
  RowId row = NumRows();
  keys_.push_back(key);
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(values[c]);
  key_to_row_[key] = row;
  next_key_ = std::max(next_key_, key + 1);
  if (listener_ != nullptr) listener_->OnAddRow(key, row, values);
  return Status::OK();
}

void EnvironmentTable::ResetEffects() {
  // Example 4.1's post-processing re-initializes every auxiliary attribute
  // to 0 (not to the aggregate identity): the unit's own row then
  // contributes 0 to the `⊕ E` of Eq. (6), which is what makes an
  // effect-free tick a no-op even for max/min-tagged attributes.
  for (AttrId a : schema_.EffectAttrs()) {
    std::vector<double>& col = cols_[a - 1];
    if (watched_) {
      for (RowId r = 0; r < NumRows(); ++r) {
        if (col[r] != 0.0) NoteWrite(r, a);
      }
    }
    std::fill(col.begin(), col.end(), 0.0);
  }
}

void EnvironmentTable::EnableChangeTracking() {
  if (tracking_) return;
  tracking_ = true;
  watched_ = true;
  // No change window exists yet; make the first consumer rebuild.
  changes_.structural = true;
}

void EnvironmentTable::ClearChanges() {
  changes_.structural = false;
  for (RowId r : changes_.dirty_rows) changes_.masks[r] = 0;
  changes_.dirty_rows.clear();
}

void EnvironmentTable::NoteDirty(RowId row, AttrId attr) {
  if (row >= static_cast<RowId>(changes_.masks.size())) {
    changes_.masks.resize(NumRows(), 0);
  }
  uint64_t& mask = changes_.masks[row];
  if (mask == 0) changes_.dirty_rows.push_back(row);
  mask |= TableChanges::BitOf(attr);
}

void EnvironmentTable::NoteWrite(RowId row, AttrId attr) {
  if (tracking_) NoteDirty(row, attr);
  if (listener_ != nullptr) listener_->OnCellWrite(keys_[row], attr);
}

void EnvironmentTable::MarkRowDirty(RowId row, uint64_t mask) {
  if (!tracking_ || mask == 0) return;
  if (row >= static_cast<RowId>(changes_.masks.size())) {
    changes_.masks.resize(NumRows(), 0);
  }
  uint64_t& slot = changes_.masks[row];
  if (slot == 0) changes_.dirty_rows.push_back(row);
  slot |= mask;
}

int32_t EnvironmentTable::RemoveIf(const std::function<bool(RowId)>& pred) {
  int32_t n = NumRows();
  RowId out = 0;
  RowId first_removed = -1;
  std::vector<int64_t> removed_keys;
  for (RowId in = 0; in < n; ++in) {
    if (pred(in)) {
      key_to_row_.erase(keys_[in]);
      if (listener_ != nullptr) {
        if (first_removed < 0) first_removed = in;
        removed_keys.push_back(keys_[in]);
      }
      continue;
    }
    if (out != in) {
      keys_[out] = keys_[in];
      for (auto& col : cols_) col[out] = col[in];
      key_to_row_[keys_[out]] = out;
    }
    ++out;
  }
  keys_.resize(out);
  for (auto& col : cols_) col.resize(out);
  if (tracking_ && out != n) changes_.structural = true;
  if (listener_ != nullptr && !removed_keys.empty()) {
    listener_->OnRemoveRows(first_removed, removed_keys);
  }
  return n - out;
}

bool EnvironmentTable::Equals(const EnvironmentTable& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (keys_ != other.keys_) return false;
  return cols_ == other.cols_;
}

std::string EnvironmentTable::DiffString(const EnvironmentTable& other) const {
  if (!(schema_ == other.schema_)) return "schemas differ";
  if (NumRows() != other.NumRows()) {
    return "row counts differ: " + std::to_string(NumRows()) + " vs " +
           std::to_string(other.NumRows());
  }
  for (RowId r = 0; r < NumRows(); ++r) {
    if (keys_[r] != other.keys_[r]) {
      return "row " + std::to_string(r) + ": key " + std::to_string(keys_[r]) +
             " vs " + std::to_string(other.keys_[r]);
    }
    for (AttrId a = 1; a < schema_.NumAttrs(); ++a) {
      if (Get(r, a) != other.Get(r, a)) {
        return "row " + std::to_string(r) + " (key " +
               std::to_string(keys_[r]) + ") attr '" + schema_.attr(a).name +
               "': " + FormatDouble(Get(r, a), 9) + " vs " +
               FormatDouble(other.Get(r, a), 9);
      }
    }
  }
  return "";
}

std::string EnvironmentTable::ToString(int32_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << ", " << NumRows() << " rows\n";
  int32_t shown = std::min(max_rows, NumRows());
  for (RowId r = 0; r < shown; ++r) {
    os << "  [" << keys_[r] << "]";
    for (AttrId a = 1; a < schema_.NumAttrs(); ++a) {
      os << " " << schema_.attr(a).name << "=" << FormatDouble(Get(r, a), 2);
    }
    os << "\n";
  }
  if (shown < NumRows()) os << "  ... (" << NumRows() - shown << " more)\n";
  return os.str();
}

}  // namespace sgl
