// Environment-table schema with per-attribute combine-type tags.
//
// Section 4.2: the schema of E is split into *state* attributes (tagged
// `const`; only the game-mechanics post-processing step may change them)
// and *effect* attributes tagged `sum` (stackable), `max`/`min`
// (nonstackable), or `set` (nonstackable "absolute value" effects resolved
// by maximum priority, e.g. a freeze spell — Section 2.2).
#ifndef SGL_ENV_SCHEMA_H_
#define SGL_ENV_SCHEMA_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace sgl {

/// How ⊕ combines values of an attribute (Section 4.2's type tags).
enum class CombineType : uint8_t {
  kConst,  ///< state attribute; never the direct subject of an effect
  kSum,    ///< stackable effect: combined by summation
  kMax,    ///< nonstackable effect: combined by maximum
  kMin,    ///< nonstackable effect: combined by minimum
  kSet,    ///< absolute-value effect: combined by maximum priority
};

/// Printable name of a combine type ("const", "sum", ...).
const char* CombineTypeName(CombineType type);

/// Identity element of a combine type's aggregate (0 for sum, -inf for max,
/// +inf for min). kConst and kSet have no scalar identity; kSet's identity
/// is "no effect recorded" (priority = -inf).
double CombineIdentity(CombineType type);

/// Fold `next` into `acc` under the given combine type (kSum/kMax/kMin only).
double CombineFold(CombineType type, double acc, double next);

/// One attribute of the environment schema.
struct Attribute {
  std::string name;
  CombineType combine = CombineType::kConst;
};

/// Attribute index within a Schema. Index 0 is always the key.
using AttrId = int32_t;
inline constexpr AttrId kKeyAttrId = 0;

/// Schema of an environment table: `E(key, A1, ..., Ak)` with the key
/// always first and always const (Section 4.2).
class Schema {
 public:
  Schema();

  /// Append an attribute; returns its AttrId or an error on duplicates.
  Result<AttrId> AddAttribute(const std::string& name, CombineType combine);

  /// Number of attributes including the key.
  int32_t NumAttrs() const { return static_cast<int32_t>(attrs_.size()); }

  const Attribute& attr(AttrId id) const { return attrs_[id]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Find an attribute by name; kInvalidAttr if absent.
  AttrId Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) >= 0; }

  /// As Find, but a missing attribute is an InvalidArgument error naming
  /// the attribute and the schema — use wherever silently propagating
  /// kInvalidAttr would turn a configuration mistake into a crash.
  Result<AttrId> Require(const std::string& name) const;

  /// List of all non-const (effect) attribute ids.
  std::vector<AttrId> EffectAttrs() const;
  /// List of all const (state) attribute ids, including the key.
  std::vector<AttrId> StateAttrs() const;

  bool operator==(const Schema& o) const;

  std::string ToString() const;

  static constexpr AttrId kInvalidAttr = -1;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace sgl

#endif  // SGL_ENV_SCHEMA_H_
