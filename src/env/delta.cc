#include "env/delta.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace sgl {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DeltaRelation::DeltaRelation(const Schema* schema) : schema_(schema) {
  set_index_of_attr_.assign(schema->NumAttrs(), -1);
  for (AttrId a = 1; a < schema->NumAttrs(); ++a) {
    if (schema->attr(a).combine == CombineType::kSet) {
      set_index_of_attr_[a] = num_set_attrs_++;
    }
  }
}

void DeltaRelation::Add(int64_t key, std::vector<double> values) {
  assert(static_cast<int32_t>(values.size()) == schema_->NumAttrs() - 1);
  DeltaRow row;
  row.key = key;
  row.values = std::move(values);
  row.set_prios.assign(num_set_attrs_, -kInf);
  rows_.push_back(std::move(row));
}

DeltaRelation DeltaRelation::UnionAll(const DeltaRelation& a,
                                      const DeltaRelation& b) {
  assert(&a.schema() == &b.schema() || a.schema() == b.schema());
  DeltaRelation out(a.schema_);
  out.rows_ = a.rows_;
  out.rows_.insert(out.rows_.end(), b.rows_.begin(), b.rows_.end());
  return out;
}

DeltaRelation DeltaRelation::Combine() const {
  DeltaRelation out(schema_);
  // Group rows by key. std::map gives the deterministic by-key ordering the
  // interface promises.
  std::map<int64_t, DeltaRow> groups;
  for (const DeltaRow& row : rows_) {
    auto [it, inserted] = groups.emplace(row.key, row);
    if (inserted) continue;
    DeltaRow& acc = it->second;
    for (AttrId a = 1; a < schema_->NumAttrs(); ++a) {
      int32_t i = a - 1;
      CombineType t = schema_->attr(a).combine;
      switch (t) {
        case CombineType::kConst:
          // Const attributes are functionally dependent on the key; rows in
          // a group must agree (Section 4.2 groups by key AND const attrs).
          assert(acc.values[i] == row.values[i] &&
                 "const attribute mismatch within a ⊕ group");
          break;
        case CombineType::kSum:
        case CombineType::kMax:
        case CombineType::kMin:
          acc.values[i] = CombineFold(t, acc.values[i], row.values[i]);
          break;
        case CombineType::kSet: {
          int32_t si = set_index_of_attr_[a];
          double p = row.set_prios[si];
          double v = row.values[i];
          if (p > acc.set_prios[si] ||
              (p == acc.set_prios[si] && v > acc.values[i])) {
            acc.set_prios[si] = p;
            acc.values[i] = v;
          }
          break;
        }
      }
    }
  }
  for (auto& [key, row] : groups) out.rows_.push_back(std::move(row));
  return out;
}

DeltaRelation DeltaRelation::FromTable(const EnvironmentTable& table) {
  DeltaRelation out(&table.schema());
  out.rows_.reserve(table.NumRows());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    DeltaRow row;
    row.key = table.KeyAt(r);
    row.values.resize(table.schema().NumAttrs() - 1);
    for (AttrId a = 1; a < table.schema().NumAttrs(); ++a) {
      row.values[a - 1] = table.Get(r, a);
    }
    row.set_prios.assign(out.num_set_attrs_, -kInf);
    out.rows_.push_back(std::move(row));
  }
  return out;
}

void DeltaRelation::FoldInto(const EnvironmentTable& table,
                             EffectBuffer* buffer) const {
  for (const DeltaRow& row : rows_) {
    RowId r = table.RowOf(row.key);
    if (r < 0) continue;
    for (AttrId a : schema_->EffectAttrs()) {
      int32_t i = a - 1;
      switch (schema_->attr(a).combine) {
        case CombineType::kSet: {
          int32_t si = set_index_of_attr_[a];
          if (row.set_prios[si] > -kInf) {
            buffer->AccumulateSet(r, a, row.values[i], row.set_prios[si]);
          }
          break;
        }
        case CombineType::kSum:
          // The base contribution was already snapshotted by Begin(); a
          // delta built FromTable would double it, so callers fold only
          // script-produced deltas. Sum deltas add their raw value.
          buffer->Accumulate(r, a, row.values[i]);
          break;
        default:
          buffer->Accumulate(r, a, row.values[i]);
          break;
      }
    }
  }
}

bool DeltaRelation::EqualsUnordered(const DeltaRelation& other) const {
  if (!(schema() == other.schema())) return false;
  if (rows_.size() != other.rows_.size()) return false;
  auto sorted_rows = [](const DeltaRelation& rel) {
    std::vector<DeltaRow> rows = rel.rows_;
    std::sort(rows.begin(), rows.end(),
              [](const DeltaRow& a, const DeltaRow& b) {
                if (a.key != b.key) return a.key < b.key;
                if (a.values != b.values) return a.values < b.values;
                return a.set_prios < b.set_prios;
              });
    return rows;
  };
  std::vector<DeltaRow> lhs = sorted_rows(*this);
  std::vector<DeltaRow> rhs = sorted_rows(other);
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].key != rhs[i].key || lhs[i].values != rhs[i].values ||
        lhs[i].set_prios != rhs[i].set_prios) {
      return false;
    }
  }
  return true;
}

std::string DeltaRelation::ToString(int32_t max_rows) const {
  std::ostringstream os;
  os << "Delta over " << schema_->ToString() << ", " << rows_.size()
     << " rows\n";
  int64_t shown = std::min<int64_t>(max_rows, NumRows());
  for (int64_t i = 0; i < shown; ++i) {
    os << "  [" << rows_[i].key << "]";
    for (AttrId a = 1; a < schema_->NumAttrs(); ++a) {
      os << " " << schema_->attr(a).name << "="
         << FormatDouble(rows_[i].values[a - 1], 2);
    }
    os << "\n";
  }
  if (shown < NumRows()) os << "  ...\n";
  return os.str();
}

}  // namespace sgl
