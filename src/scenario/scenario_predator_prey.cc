// Predator–prey pursuit: wolves chase the nearest sheep (a kD-tree
// min-distance probe per wolf per tick), sheep flee the nearest wolf and
// otherwise regroup toward the flock centroid.
//
// A two-script session dispatched by `species` — the paper's
// one-script-per-unit-class design — where each species' entire
// behaviour is aggregate queries over the other. Eaten sheep respawn at
// a deterministic pseudo-random cell so the population (and thus the
// benchmark workload) stays constant.
#include <memory>

#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

constexpr double kWolf = 0.0;
constexpr double kSheep = 1.0;
constexpr double kSheepHealth = 6.0;
constexpr double kWolfHealth = 20.0;

const char* kWolfScript = R"SGL(
  const WOLF = 0;
  const SHEEP = 1;
  const BITE_RANGE = 2;
  const SIGHT = 28;

  # Min-distance pursuit: the nearest sheep in the sight box (kD tree).
  aggregate NearestPrey(u) {
    select nearest(*) from E e
    where e.species = SHEEP
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  # Rival pressure: wolves already crowding the same ground.
  aggregate PackmatesNear(u, r) {
    select count(*) from E e
    where e.species = WOLF and e.key <> u.key
      and e.posx >= u.posx - r and e.posx <= u.posx + r
      and e.posy >= u.posy - r and e.posy <= u.posy + r;
  }

  action Bite(u, target, dmg) {
    update e where e.key = target set damage += dmg;
  }
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    let prey = NearestPrey(u);
    if prey.found = 1 and prey.dist2 <= BITE_RANGE * BITE_RANGE then
      perform Bite(u, prey.key, 2 + random(1) mod 3);
    else if prey.found = 1 then {
      if PackmatesNear(u, 3) >= 2 then
        # Spread the pack instead of dogpiling one sheep.
        perform Move(u, random(2) mod 7 - 3, random(3) mod 7 - 3);
      else
        perform Move(u, prey.posx - u.posx, prey.posy - u.posy);
    }
    else
      perform Move(u, random(4) mod 5 - 2, random(5) mod 5 - 2);
  }
)SGL";

const char* kSheepScript = R"SGL(
  const WOLF = 0;
  const SHEEP = 1;
  const SIGHT = 16;

  aggregate NearestHunter(u) {
    select nearest(*) from E e
    where e.species = WOLF
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  aggregate FlockCentroid(u) {
    select avg(e.posx) as x, avg(e.posy) as y, count(*) as n from E e
    where e.species = SHEEP;
  }

  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function main(u) {
    let hunter = NearestHunter(u);
    if hunter.found = 1 then {
      let away = (u.posx, u.posy) - (hunter.posx, hunter.posy);
      perform Move(u, away.x, away.y);
    }
    else {
      let flock = FlockCentroid(u);
      perform Move(u, flock.x - u.posx, flock.y - u.posy);
    }
  }
)SGL";

Schema PredatorPreySchema() {
  Schema s;
  (void)s.AddAttribute("species", CombineType::kConst);
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("health", CombineType::kConst);
  (void)s.AddAttribute("maxhealth", CombineType::kConst);
  (void)s.AddAttribute("damage", CombineType::kSum);
  (void)s.AddAttribute("movex", CombineType::kSum);
  (void)s.AddAttribute("movey", CombineType::kSum);
  return s;
}

/// Bites land as damage; sheep that run out of health respawn with full
/// health at a key-derived random cell (constant population).
class PastureMechanics : public GameMechanics {
 public:
  explicit PastureMechanics(int64_t side) : side_(side) {}

  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override {
    (void)buffer;
    (void)rnd;
    const Schema& s = table->schema();
    const AttrId health = s.Find("health");
    const AttrId damage = s.Find("damage");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      table->Set(r, health, table->Get(r, health) - table->Get(r, damage));
    }
    return Status::OK();
  }

  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
    const Schema& s = table->schema();
    const AttrId health = s.Find("health");
    const AttrId maxhealth = s.Find("maxhealth");
    const AttrId posx = s.Find("posx");
    const AttrId posy = s.Find("posy");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, health) > 0) continue;
      ++eaten_;
      int64_t key = table->KeyAt(r);
      table->Set(r, posx, static_cast<double>(rnd.DrawBounded(key, 71, side_)));
      table->Set(r, posy, static_cast<double>(rnd.DrawBounded(key, 72, side_)));
      table->Set(r, health, table->Get(r, maxhealth));
    }
    return Status::OK();
  }

  int64_t eaten() const { return eaten_; }

 private:
  int64_t side_;
  int64_t eaten_ = 0;
};

Result<EnvironmentTable> PredatorPreyWorld(const ScenarioParams& params) {
  EnvironmentTable table(PredatorPreySchema());
  Xoshiro256 rng(params.seed);
  const int64_t side = params.GridSide();
  scenario_internal::DistinctCells cells(&rng, side);
  // One wolf per five sheep (at least one wolf).
  const int32_t wolves = params.units / 6 > 0 ? params.units / 6 : 1;
  for (int32_t i = 0; i < params.units; ++i) {
    bool wolf = i < wolves;
    SGL_ASSIGN_OR_RETURN(auto cell, cells.Draw());
    auto [x, y] = cell;
    double hp = wolf ? kWolfHealth : kSheepHealth;
    SGL_RETURN_NOT_OK(table
                          .AddRow({wolf ? kWolf : kSheep,
                                   static_cast<double>(x),
                                   static_cast<double>(y), hp, hp, 0, 0, 0})
                          .status());
  }
  return table;
}

Status PredatorPreyInvariant(const ScenarioParams& params,
                             const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  if (t.NumRows() != params.units) {
    return Status::ExecutionError("pasture population changed: ", t.NumRows(),
                                  " of ", params.units);
  }
  SGL_RETURN_NOT_OK(scenario_internal::CheckOnGrid(t, params.GridSide()));
  SGL_RETURN_NOT_OK(
      scenario_internal::CheckCodeAttr(t, "species", {kWolf, kSheep}));
  const Schema& s = t.schema();
  const AttrId species = s.Find("species");
  const AttrId health = s.Find("health");
  const AttrId maxhealth = s.Find("maxhealth");
  const int32_t expected_wolves =
      params.units / 6 > 0 ? params.units / 6 : 1;
  int32_t wolves = 0;
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (t.Get(r, species) == kWolf) ++wolves;
    double h = t.Get(r, health);
    if (h <= 0 || h > t.Get(r, maxhealth)) {
      return Status::ExecutionError("unit ", t.KeyAt(r),
                                    ": health out of range: ", h);
    }
  }
  if (wolves != expected_wolves) {
    return Status::ExecutionError("wolf population changed: ", wolves, " of ",
                                  expected_wolves);
  }
  return Status::OK();
}

}  // namespace

Status RegisterPredatorPreyScenario(ScenarioRegistry* registry) {
  ScenarioDef def;
  def.name = "predator_prey";
  def.description =
      "wolves pursue the nearest sheep (kD-tree min-distance probes), sheep "
      "flee the nearest wolf; two scripts dispatched by species, eaten sheep "
      "respawn deterministically";
  def.world = PredatorPreyWorld;
  def.configure = [](const ScenarioParams& params, SimulationBuilder& b) {
    SGL_ASSIGN_OR_RETURN(Script wolves,
                         CompileScript(kWolfScript, PredatorPreySchema()));
    SGL_ASSIGN_OR_RETURN(Script sheep,
                         CompileScript(kSheepScript, PredatorPreySchema()));
    const int64_t side = params.GridSide();
    b.config().grid_width = side;
    b.config().grid_height = side;
    b.config().step_per_tick = 3.0;
    b.DispatchBy("species")
        .AddScript("wolves", std::move(wolves), /*dispatch_value=*/kWolf)
        .AddScript("sheep", std::move(sheep), /*dispatch_value=*/kSheep)
        .SetMechanics(std::make_unique<PastureMechanics>(side));
    return Status::OK();
  };
  def.invariant = PredatorPreyInvariant;
  return registry->Register(std::move(def));
}

}  // namespace sgl
