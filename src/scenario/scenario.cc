#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/grid.h"

namespace sgl {

int64_t ScenarioParams::GridSide() const {
  return GridSideFor(units, density);
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    Status st = RegisterBuiltinScenarios(r);
    if (!st.ok()) {
      std::fprintf(stderr, "builtin scenario registration failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    return r;
  }();
  return *registry;
}

Status ScenarioRegistry::Register(ScenarioDef def) {
  if (def.name.empty()) {
    return Status::Invalid("scenario registration requires a name");
  }
  if (!def.world || !def.configure || !def.invariant) {
    return Status::Invalid("scenario '", def.name,
                           "' must provide world, configure, and invariant");
  }
  auto [it, inserted] = scenarios_.emplace(def.name, std::move(def));
  if (!inserted) {
    return Status::AlreadyExists("scenario '", it->first,
                                 "' is already registered");
  }
  return Status::OK();
}

Result<const ScenarioDef*> ScenarioRegistry::Get(
    const std::string& name) const {
  auto it = scenarios_.find(name);
  if (it != scenarios_.end()) return &it->second;
  std::ostringstream known;
  for (const auto& [n, def] : scenarios_) {
    if (known.tellp() > 0) known << ", ";
    known << n;
  }
  return Status::NotFound("unknown scenario '", name,
                          "'; registered scenarios: ", known.str());
}

std::vector<std::string> ScenarioRegistry::List() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, def] : scenarios_) names.push_back(name);
  return names;  // std::map iterates sorted
}

Status ScenarioRegistry::PrepareBuilder(const std::string& name,
                                        const ScenarioParams& params,
                                        SimulationConfig config,
                                        SimulationBuilder* builder) const {
  SGL_ASSIGN_OR_RETURN(const ScenarioDef* def, Get(name));
  SGL_ASSIGN_OR_RETURN(EnvironmentTable table, def->world(params));
  // The scenario seed governs both world generation (inside def->world)
  // and per-tick randomness, mirroring MakeBattleSimWithConfig.
  config.seed = params.seed;
  builder->SetTable(std::move(table))
      .SetName(def->name)
      .SetConfig(std::move(config))
      .Apply([&](SimulationBuilder& b) { return def->configure(params, b); });
  return Status::OK();
}

Result<std::unique_ptr<Simulation>> ScenarioRegistry::BuildSimulation(
    const std::string& name, const ScenarioParams& params,
    SimulationConfig config) const {
  SimulationBuilder builder;
  SGL_RETURN_NOT_OK(
      PrepareBuilder(name, params, std::move(config), &builder));
  return builder.Build();
}

Status ScenarioRegistry::CheckInvariants(const std::string& name,
                                         const ScenarioParams& params,
                                         const Simulation& sim) const {
  SGL_ASSIGN_OR_RETURN(const ScenarioDef* def, Get(name));
  Status st = def->invariant(params, sim);
  if (!st.ok() && sim.flight_recorder() != nullptr) {
    // Best-effort: the invariant failure is the interesting error; a
    // dump failure must not mask it.
    const Status dump_st = sim.DumpFlightRecorder(
        sim.config().artifacts.flight_recorder_path,
        "invariant failure: " + st.ToString());
    (void)dump_st;
  }
  return st;
}

Status RegisterBuiltinScenarios(ScenarioRegistry* registry) {
  SGL_RETURN_NOT_OK(RegisterBattleScenarios(registry));
  SGL_RETURN_NOT_OK(RegisterEpidemicScenario(registry));
  SGL_RETURN_NOT_OK(RegisterPredatorPreyScenario(registry));
  SGL_RETURN_NOT_OK(RegisterEvacuationScenario(registry));
  SGL_RETURN_NOT_OK(RegisterMarketScenario(registry));
  SGL_RETURN_NOT_OK(RegisterCtfScenario(registry));
  return Status::OK();
}

}  // namespace sgl
