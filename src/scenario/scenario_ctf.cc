// Capture the flag: two teams race for each other's flag, freezing
// opponents and rallying teammates on the way.
//
// The workload deliberately mixes every effect class the schema system
// has: stackable movement sums, a max-combined rally aura delivered as
// an area-of-effect action (Section 5.4's deferred path), and two
// set-priority effects (Section 2.2's absolute-value effects) —
// `freeze`, where the highest-key attacker wins the tick, and
// `carrier`, which arbitrates simultaneous flag claims so exactly one
// raider scores even when several touch the flag in the same tick.
// Scoring teleports the scorer home; flags are immobile landmark rows.
#include <array>
#include <memory>

#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

constexpr double kSoldier = 0.0;
constexpr double kFlag = 1.0;
constexpr double kRaider = 0.0;
constexpr double kSupport = 1.0;
constexpr int64_t kFreezeTicks = 4;

const char* kSoldierScript = R"SGL(
  const SOLDIER = 0;
  const FLAG = 1;
  const SUPPORT = 1;
  const FREEZE_RANGE = 3;
  const FREEZE_TICKS = 4;
  const PICK_RANGE = 2;
  const RALLY_RANGE = 8;

  aggregate EnemyFlag(u) {
    select nearest(*) from E e
    where e.kind = FLAG and e.team <> u.team;
  }

  aggregate NearestFoe(u, r) {
    select nearest(*) from E e
    where e.kind = SOLDIER and e.team <> u.team
      and e.posx >= u.posx - r and e.posx <= u.posx + r
      and e.posy >= u.posy - r and e.posy <= u.posy + r;
  }

  aggregate FrozenAlliesNear(u, r) {
    select count(*) from E e
    where e.kind = SOLDIER and e.team = u.team and e.frozen >= 1
      and e.posx >= u.posx - r and e.posx <= u.posx + r
      and e.posy >= u.posy - r and e.posy <= u.posy + r;
  }

  aggregate SquadCentroid(u) {
    select avg(e.posx) as x, avg(e.posy) as y, count(*) as n from E e
    where e.kind = SOLDIER and e.team = u.team;
  }

  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  # Absolute-value effect: the highest-key attacker's freeze sticks.
  action Freeze(u, target) {
    update e where e.key = target set freeze = FREEZE_TICKS priority u.key;
  }

  # Simultaneous flag touches resolved by set-priority: one claimant wins.
  action ClaimFlag(u, f) {
    update e where e.key = f set carrier = u.key priority u.key;
  }

  # Area-of-effect morale burst: thaws frozen teammates faster.
  action Rally(u) {
    update e where e.kind = SOLDIER and e.team = u.team
      and e.posx >= u.posx - RALLY_RANGE and e.posx <= u.posx + RALLY_RANGE
      and e.posy >= u.posy - RALLY_RANGE and e.posy <= u.posy + RALLY_RANGE
      set rally max= 1;
  }

  function raider_ai(u) {
    let foe = NearestFoe(u, FREEZE_RANGE);
    if foe.found = 1 and foe.frozen = 0 then
      perform Freeze(u, foe.key);
    else {
      let flag = EnemyFlag(u);
      if flag.found = 1 then {
        if flag.dist2 <= PICK_RANGE * PICK_RANGE then
          perform ClaimFlag(u, flag.key);
        else
          perform Move(u, flag.posx - u.posx, flag.posy - u.posy);
      }
    }
  }

  function support_ai(u) {
    if FrozenAlliesNear(u, RALLY_RANGE) > 0 then
      perform Rally(u);
    else {
      let squad = SquadCentroid(u);
      perform Move(u, squad.x - u.posx, squad.y - u.posy);
    }
  }

  function main(u) {
    if u.frozen = 0 then {
      if u.role = SUPPORT then perform support_ai(u);
      else perform raider_ai(u);
    }
  }
)SGL";

// Flags are scenery: they never act.
const char* kFlagScript = R"SGL(
  function main(u) { }
)SGL";

Schema CtfSchema() {
  Schema s;
  (void)s.AddAttribute("kind", CombineType::kConst);
  (void)s.AddAttribute("team", CombineType::kConst);
  (void)s.AddAttribute("role", CombineType::kConst);
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("frozen", CombineType::kConst);
  (void)s.AddAttribute("freeze", CombineType::kSet);
  (void)s.AddAttribute("carrier", CombineType::kSet);
  (void)s.AddAttribute("rally", CombineType::kMax);
  (void)s.AddAttribute("movex", CombineType::kSum);
  (void)s.AddAttribute("movey", CombineType::kSum);
  return s;
}

/// Flag home cells for a given grid side.
std::array<std::pair<int64_t, int64_t>, 2> FlagHomes(int64_t side) {
  return {{{2, side / 2}, {side - 3, side / 2}}};
}

class CtfMechanics : public GameMechanics {
 public:
  explicit CtfMechanics(int64_t side) : side_(side) {}

  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override {
    const Schema& s = table->schema();
    const AttrId kind = s.Find("kind");
    const AttrId team = s.Find("team");
    const AttrId posx = s.Find("posx");
    const AttrId posy = s.Find("posy");
    const AttrId frozen = s.Find("frozen");
    const AttrId freeze = s.Find("freeze");
    const AttrId carrier = s.Find("carrier");
    const AttrId rally = s.Find("rally");
    const auto homes = FlagHomes(side_);
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, kind) == kSoldier) {
        if (buffer.HasSet(r, freeze)) {
          table->Set(r, frozen, table->Get(r, freeze));
        } else {
          // Thaw one tick per tick, plus one more under a rally aura.
          double thaw = 1 + table->Get(r, rally);
          double left = table->Get(r, frozen) - thaw;
          table->Set(r, frozen, left > 0 ? left : 0);
        }
        continue;
      }
      // A flag row: a set `carrier` effect means one raider touched it
      // this tick (set-priority already arbitrated simultaneous claims).
      if (!buffer.HasSet(r, carrier)) continue;
      int64_t scorer = static_cast<int64_t>(table->Get(r, carrier));
      RowId scorer_row = table->RowOf(scorer);
      if (scorer_row < 0) {
        return Status::ExecutionError("flag claimed by unknown unit ", scorer);
      }
      ++captures_[table->Get(scorer_row, team) == 0.0 ? 0 : 1];
      // The scorer carries the flag straight home: teleport to a
      // key-derived cell beside its own flag.
      auto home = homes[table->Get(scorer_row, team) == 0.0 ? 0 : 1];
      int64_t dx = rnd.DrawBounded(scorer, 81, 5) - 2;
      int64_t dy = rnd.DrawBounded(scorer, 82, 5) - 2;
      auto clamp = [&](int64_t v) {
        if (v < 0) return static_cast<int64_t>(0);
        if (v >= side_) return side_ - 1;
        return v;
      };
      table->Set(scorer_row, posx, static_cast<double>(clamp(home.first + dx)));
      table->Set(scorer_row, posy,
                 static_cast<double>(clamp(home.second + dy)));
    }
    return Status::OK();
  }

  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
    (void)table;
    (void)rnd;
    return Status::OK();
  }

  int64_t captures(int team) const { return captures_[team]; }

 private:
  int64_t side_;
  std::array<int64_t, 2> captures_ = {0, 0};
};

Result<EnvironmentTable> CtfWorld(const ScenarioParams& params) {
  EnvironmentTable table(CtfSchema());
  Xoshiro256 rng(params.seed);
  const int64_t side = params.GridSide();
  scenario_internal::DistinctCells cells(&rng, side);
  for (int team = 0; team < 2; ++team) {
    auto [fx, fy] = FlagHomes(side)[team];
    cells.Claim(fx, fy);
    SGL_RETURN_NOT_OK(
        table
            .AddRow({kFlag, static_cast<double>(team), kRaider,
                     static_cast<double>(fx), static_cast<double>(fy), 0, 0, 0,
                     0, 0, 0})
            .status());
  }
  // Each team musters in its own third of the field; every fourth
  // soldier is support, the rest raid.
  const int64_t band = side / 3 > 0 ? side / 3 : 1;
  for (int32_t i = 0; i < params.units; ++i) {
    int team = i % 2;
    double role = (i / 2) % 4 == 3 ? kSupport : kRaider;
    SGL_ASSIGN_OR_RETURN(auto cell,
                         cells.DrawInBand(team == 0 ? 0 : side - band, band));
    auto [x, y] = cell;
    SGL_RETURN_NOT_OK(
        table
            .AddRow({kSoldier, static_cast<double>(team), role,
                     static_cast<double>(x), static_cast<double>(y), 0, 0, 0,
                     0, 0, 0})
            .status());
  }
  return table;
}

Status CtfInvariant(const ScenarioParams& params, const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  const int64_t side = params.GridSide();
  if (t.NumRows() != params.units + 2) {
    return Status::ExecutionError("ctf lost rows: ", t.NumRows());
  }
  SGL_RETURN_NOT_OK(scenario_internal::CheckOnGrid(t, side));
  SGL_RETURN_NOT_OK(
      scenario_internal::CheckCodeAttr(t, "kind", {kSoldier, kFlag}));
  SGL_RETURN_NOT_OK(scenario_internal::CheckCodeAttr(t, "team", {0, 1}));
  SGL_RETURN_NOT_OK(
      scenario_internal::CheckCodeAttr(t, "role", {kRaider, kSupport}));
  const Schema& s = t.schema();
  const AttrId kind = s.Find("kind");
  const AttrId team = s.Find("team");
  const AttrId posx = s.Find("posx");
  const AttrId posy = s.Find("posy");
  const AttrId frozen = s.Find("frozen");
  const auto homes = FlagHomes(side);
  int32_t flags = 0;
  std::array<int32_t, 2> team_sizes = {0, 0};
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (t.Get(r, kind) == kFlag) {
      ++flags;
      auto home = homes[t.Get(r, team) == 0.0 ? 0 : 1];
      if (t.Get(r, posx) != static_cast<double>(home.first) ||
          t.Get(r, posy) != static_cast<double>(home.second)) {
        return Status::ExecutionError("flag of team ", t.Get(r, team),
                                      " left its home cell");
      }
      continue;
    }
    ++team_sizes[t.Get(r, team) == 0.0 ? 0 : 1];
    double f = t.Get(r, frozen);
    if (f < 0 || f > static_cast<double>(kFreezeTicks)) {
      return Status::ExecutionError("unit ", t.KeyAt(r),
                                    ": frozen out of range: ", f);
    }
  }
  if (flags != 2) {
    return Status::ExecutionError("expected 2 flags, found ", flags);
  }
  if (team_sizes[0] + team_sizes[1] != params.units ||
      std::abs(team_sizes[0] - team_sizes[1]) > 1) {
    return Status::ExecutionError("team sizes drifted: ", team_sizes[0], " vs ",
                                  team_sizes[1]);
  }
  return Status::OK();
}

}  // namespace

Status RegisterCtfScenario(ScenarioRegistry* registry) {
  ScenarioDef def;
  def.name = "ctf";
  def.description =
      "capture the flag: set-priority freezes and claim arbitration, an "
      "area-of-effect rally aura, and kD-tree flag/foe probes; scorers "
      "teleport home and the flags never move";
  def.world = CtfWorld;
  def.configure = [](const ScenarioParams& params, SimulationBuilder& b) {
    SGL_ASSIGN_OR_RETURN(Script soldier,
                         CompileScript(kSoldierScript, CtfSchema()));
    SGL_ASSIGN_OR_RETURN(Script scenery,
                         CompileScript(kFlagScript, CtfSchema()));
    const int64_t side = params.GridSide();
    b.config().grid_width = side;
    b.config().grid_height = side;
    b.config().step_per_tick = 3.0;
    b.DispatchBy("kind")
        .AddScript("soldier", std::move(soldier), /*dispatch_value=*/kSoldier)
        .AddScript("flag", std::move(scenery), /*dispatch_value=*/kFlag)
        .SetMechanics(std::make_unique<CtfMechanics>(side));
    return Status::OK();
  };
  def.invariant = CtfInvariant;
  return registry->Register(std::move(def));
}

}  // namespace sgl
