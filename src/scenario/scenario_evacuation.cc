// Crowd evacuation through choke points: everyone heads for the nearest
// exit, and the exits are narrow enough that congestion becomes the
// dominant dynamic.
//
// Exits are inert landmark rows in E (a second script class dispatched
// by `kind`), so "where is my nearest exit" is itself a kD-tree nearest
// probe, and "how jammed is the door" is a range count over the unevacuated
// crowd. Units that reach an exit raise a max-combined `atexit` effect on
// themselves; the mechanics phase retires them to a holding cell off the
// floor. The crowd only drains — the invariant checks retirement is
// one-way and everyone else stays on the floor.
#include <memory>

#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

constexpr double kPerson = 0.0;
constexpr double kExit = 1.0;

const char* kPersonScript = R"SGL(
  const PERSON = 0;
  const EXIT = 1;
  const REACH = 2;
  const JAM_RADIUS = 4;
  const JAM = 6;

  # The nearest exit anywhere on the floor (global kD-tree probe over the
  # handful of EXIT landmark rows).
  aggregate NearestExit(u) {
    select nearest(*) from E e
    where e.kind = EXIT;
  }

  # How many people are packed around me (the choke-point pressure).
  aggregate CrowdNear(u, r) {
    select count(*) from E e
    where e.kind = PERSON and e.escaped = 0 and e.key <> u.key
      and e.posx >= u.posx - r and e.posx <= u.posx + r
      and e.posy >= u.posy - r and e.posy <= u.posy + r;
  }

  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }
  action ReachExit(u) {
    update e where e.key = u.key set atexit max= 1;
  }

  function main(u) {
    if u.escaped = 0 then {
      let door = NearestExit(u);
      if door.found = 1 then {
        if door.dist2 <= REACH * REACH then
          perform ReachExit(u);
        else if CrowdNear(u, JAM_RADIUS) > JAM then
          # Jammed: jostle sideways instead of pushing into the pile.
          perform Move(u, random(1) mod 5 - 2, random(2) mod 5 - 2);
        else
          perform Move(u, door.posx - u.posx, door.posy - u.posy);
      }
    }
  }
)SGL";

// Exits are scenery: they never act.
const char* kExitScript = R"SGL(
  function main(u) { }
)SGL";

Schema EvacuationSchema() {
  Schema s;
  (void)s.AddAttribute("kind", CombineType::kConst);
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("escaped", CombineType::kConst);
  (void)s.AddAttribute("atexit", CombineType::kMax);
  (void)s.AddAttribute("movex", CombineType::kSum);
  (void)s.AddAttribute("movey", CombineType::kSum);
  return s;
}

/// Units that touched an exit this tick retire to the holding cell at
/// (0, 0) and never act again.
class EvacuationMechanics : public GameMechanics {
 public:
  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override {
    (void)buffer;
    (void)rnd;
    const Schema& s = table->schema();
    const AttrId escaped = s.Find("escaped");
    const AttrId atexit_attr = s.Find("atexit");
    const AttrId posx = s.Find("posx");
    const AttrId posy = s.Find("posy");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->Get(r, escaped) != 0 || table->Get(r, atexit_attr) <= 0) {
        continue;
      }
      ++evacuated_;
      table->Set(r, escaped, 1);
      table->Set(r, posx, 0);
      table->Set(r, posy, 0);
    }
    return Status::OK();
  }

  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
    (void)table;
    (void)rnd;
    return Status::OK();
  }

  int64_t evacuated() const { return evacuated_; }

 private:
  int64_t evacuated_ = 0;
};

/// Exit placement: a few doors spread along the east wall — close enough
/// to concentrate the crowd, far enough apart to form separate chokes.
std::vector<std::pair<int64_t, int64_t>> ExitCells(int64_t side) {
  std::vector<std::pair<int64_t, int64_t>> exits;
  const int64_t doors = side >= 64 ? 3 : 2;
  for (int64_t d = 0; d < doors; ++d) {
    exits.push_back({side - 1, (d + 1) * side / (doors + 1)});
  }
  return exits;
}

Result<EnvironmentTable> EvacuationWorld(const ScenarioParams& params) {
  EnvironmentTable table(EvacuationSchema());
  Xoshiro256 rng(params.seed);
  const int64_t side = params.GridSide();
  scenario_internal::DistinctCells cells(&rng, side);
  for (auto [x, y] : ExitCells(side)) {
    cells.Claim(x, y);
    SGL_RETURN_NOT_OK(table
                          .AddRow({kExit, static_cast<double>(x),
                                   static_cast<double>(y), 0, 0, 0, 0})
                          .status());
  }
  // The crowd starts in the western two thirds of the floor.
  const int64_t band = side * 2 / 3 > 0 ? side * 2 / 3 : 1;
  for (int32_t i = 0; i < params.units; ++i) {
    SGL_ASSIGN_OR_RETURN(auto cell, cells.DrawInBand(0, band));
    auto [x, y] = cell;
    SGL_RETURN_NOT_OK(table
                          .AddRow({kPerson, static_cast<double>(x),
                                   static_cast<double>(y), 0, 0, 0, 0})
                          .status());
  }
  return table;
}

Status EvacuationInvariant(const ScenarioParams& params,
                           const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  const int64_t side = params.GridSide();
  const auto exits = ExitCells(side);
  if (t.NumRows() != params.units + static_cast<int32_t>(exits.size())) {
    return Status::ExecutionError("evacuation lost rows: ", t.NumRows());
  }
  SGL_RETURN_NOT_OK(scenario_internal::CheckOnGrid(t, side));
  SGL_RETURN_NOT_OK(
      scenario_internal::CheckCodeAttr(t, "kind", {kPerson, kExit}));
  SGL_RETURN_NOT_OK(scenario_internal::CheckCodeAttr(t, "escaped", {0, 1}));
  const Schema& s = t.schema();
  const AttrId kind = s.Find("kind");
  const AttrId escaped = s.Find("escaped");
  const AttrId posx = s.Find("posx");
  const AttrId posy = s.Find("posy");
  size_t exits_seen = 0;
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (t.Get(r, kind) == kExit) {
      // Exits are immovable scenery.
      if (exits_seen >= exits.size()) {
        return Status::ExecutionError("more exit rows than doors placed");
      }
      auto expect = exits[exits_seen++];
      if (t.Get(r, posx) != static_cast<double>(expect.first) ||
          t.Get(r, posy) != static_cast<double>(expect.second)) {
        return Status::ExecutionError("exit ", t.KeyAt(r), " moved");
      }
      continue;
    }
    if (t.Get(r, escaped) != 0 &&
        (t.Get(r, posx) != 0 || t.Get(r, posy) != 0)) {
      return Status::ExecutionError("unit ", t.KeyAt(r),
                                    " escaped but is not in the holding cell");
    }
  }
  if (exits_seen != exits.size()) {
    return Status::ExecutionError("expected ", exits.size(), " exits, found ",
                                  exits_seen);
  }
  return Status::OK();
}

}  // namespace

Status RegisterEvacuationScenario(ScenarioRegistry* registry) {
  ScenarioDef def;
  def.name = "evacuation";
  def.description =
      "crowd evacuation through choke-point doors: nearest-exit kD probes, "
      "congestion counts around each unit, one-way retirement of everyone "
      "who reaches a door";
  def.world = EvacuationWorld;
  def.configure = [](const ScenarioParams& params, SimulationBuilder& b) {
    SGL_ASSIGN_OR_RETURN(Script person,
                         CompileScript(kPersonScript, EvacuationSchema()));
    SGL_ASSIGN_OR_RETURN(Script scenery,
                         CompileScript(kExitScript, EvacuationSchema()));
    const int64_t side = params.GridSide();
    b.config().grid_width = side;
    b.config().grid_height = side;
    b.config().step_per_tick = 2.0;
    b.DispatchBy("kind")
        .AddScript("person", std::move(person), /*dispatch_value=*/kPerson)
        .AddScript("exit", std::move(scenery), /*dispatch_value=*/kExit)
        .SetMechanics(std::make_unique<EvacuationMechanics>());
    return Status::OK();
  };
  def.invariant = EvacuationInvariant;
  return registry->Register(std::move(def));
}

}  // namespace sgl
