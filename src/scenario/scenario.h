// The scenario library: self-describing, parameterized simulation
// workloads built on the sgl::Simulation facade.
//
// The paper's thesis is that expressing game scripts as queries lets one
// engine scale *many kinds* of simulations. A Scenario packages one such
// kind: its SGL script(s) and schema, a deterministic world generator
// parameterized by (units, density, seed), and an invariant checker that
// states what the simulated world must always satisfy. Scenarios register
// with the global ScenarioRegistry by name, so benchmarks, tests, and
// examples can iterate "every workload we have" instead of hard-coding
// the battle demo:
//
//   SGL_ASSIGN_OR_RETURN(auto sim, ScenarioRegistry::Global().BuildSimulation(
//       "epidemic", ScenarioParams{2000, 0.01, 42}, config));
//   SGL_RETURN_NOT_OK(sim->Run(100));
//   SGL_RETURN_NOT_OK(ScenarioRegistry::Global().CheckInvariants(
//       "epidemic", ScenarioParams{2000, 0.01, 42}, *sim));
//
// Every scenario keeps its arithmetic integral (see src/game/battle.h),
// so the bit-exactness contract holds across {naive, indexed} evaluators
// and any worker-thread count — bench_suite and tests/scenario_test.cc
// cross-check it per configuration.
#ifndef SGL_SCENARIO_SCENARIO_H_
#define SGL_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/simulation.h"
#include "env/table.h"
#include "util/status.h"

namespace sgl {

/// Workload-scale knobs shared by every scenario. Scenarios derive their
/// grid from (units, density) the way the paper's Section 6 setup does:
/// the grid grows with the population so occupancy stays constant.
struct ScenarioParams {
  int32_t units = 500;
  double density = 0.01;  ///< fraction of grid cells occupied
  uint64_t seed = 7;

  /// Side length of the square grid holding `units` at `density`.
  int64_t GridSide() const;
};

/// One registered workload. The three callables must be deterministic
/// functions of their arguments — the world generator in particular is
/// re-invoked by invariant checkers to recover initial totals
/// (conserved-quantity checks) without shipping extra state around.
struct ScenarioDef {
  std::string name;
  std::string description;  ///< one line for List()/gallery output

  /// Build the initial environment table for `params`.
  std::function<Result<EnvironmentTable>(const ScenarioParams&)> world;

  /// Configure a SimulationBuilder that already holds the table and the
  /// caller's SimulationConfig: register scripts (and DispatchBy),
  /// mechanics, and adjust workload knobs through builder.config()
  /// (grid size, movement attributes, step) — but leave the caller's
  /// evaluator mode, seed, and thread count alone.
  std::function<Status(const ScenarioParams&, SimulationBuilder&)> configure;

  /// Check scenario invariants against a (possibly advanced) simulation
  /// built from the same params. OK = the world is still well-formed.
  std::function<Status(const ScenarioParams&, const Simulation&)> invariant;
};

/// Name-keyed registry of scenarios. The global instance self-populates
/// with the builtin library (battle, formation, epidemic, predator_prey,
/// evacuation, market, ctf) on first use; additional scenarios may be
/// registered at any time.
class ScenarioRegistry {
 public:
  /// The process-wide registry, builtin scenarios already registered.
  /// Not thread-safe for concurrent Register; Get/List/Build are const.
  static ScenarioRegistry& Global();

  /// Register a scenario. All three callables are required.
  Status Register(ScenarioDef def);

  /// Look up a scenario; unknown names produce a NotFound error that
  /// lists every registered scenario.
  Result<const ScenarioDef*> Get(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> List() const;

  /// Stage the scenario onto a caller-owned builder without building:
  /// generate the world for `params`, stamp config.seed from params.seed,
  /// set table/name/config, and run the scenario's configure hook. The
  /// caller can then adjust the builder further — the serving layer uses
  /// this to inject its shared Executor before SessionManager admits the
  /// session — and finally call Build().
  Status PrepareBuilder(const std::string& name, const ScenarioParams& params,
                        SimulationConfig config,
                        SimulationBuilder* builder) const;

  /// One-call assembly: PrepareBuilder on a fresh builder, then Build.
  Result<std::unique_ptr<Simulation>> BuildSimulation(
      const std::string& name, const ScenarioParams& params,
      SimulationConfig config) const;

  /// Run the scenario's invariant checker against `sim`.
  Status CheckInvariants(const std::string& name, const ScenarioParams& params,
                         const Simulation& sim) const;

 private:
  std::map<std::string, ScenarioDef> scenarios_;
};

/// Register the builtin scenario library into `registry` (idempotent per
/// registry only in the sense that re-registering fails; Global() calls
/// this exactly once). Exposed for tests that want a private registry.
Status RegisterBuiltinScenarios(ScenarioRegistry* registry);

// Per-file registration hooks of the builtin library (scenario_*.cc).
Status RegisterBattleScenarios(ScenarioRegistry* registry);
Status RegisterEpidemicScenario(ScenarioRegistry* registry);
Status RegisterPredatorPreyScenario(ScenarioRegistry* registry);
Status RegisterEvacuationScenario(ScenarioRegistry* registry);
Status RegisterMarketScenario(ScenarioRegistry* registry);
Status RegisterCtfScenario(ScenarioRegistry* registry);

}  // namespace sgl

#endif  // SGL_SCENARIO_SCENARIO_H_
