// Epidemic contagion: an SIR (susceptible / infected / recovered) model
// where infection pressure is a radius-based count aggregate.
//
// Every susceptible counts the infected inside an exposure radius — the
// classic O(n^2) neighbourhood query the paper's indexes collapse to
// O(log n) — records that count as a stackable exposure effect on
// itself, and flees the local infected centroid. The mechanics phase
// turns exposure into infection with a deterministic per-unit dice roll
// (TickRandom keyed on the unit), infected units sicken for a fixed
// number of ticks, then recover immune. All arithmetic is integral, so
// naive and indexed evaluators agree bit for bit.
#include <memory>

#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

constexpr double kSusceptible = 0.0;
constexpr double kInfected = 1.0;
constexpr double kRecovered = 2.0;
constexpr int64_t kSickTicks = 16;

const char* kEpidemicScript = R"SGL(
  const S = 0;
  const I = 1;
  const RADIUS = 10;
  const SIGHT = 12;

  # Infection pressure: infected units inside the exposure box.
  aggregate InfectedNear(u, r) {
    select count(*) from E e
    where e.state = I
      and e.posx >= u.posx - r and e.posx <= u.posx + r
      and e.posy >= u.posy - r and e.posy <= u.posy + r;
  }

  # Where the local outbreak is, for the flight response.
  aggregate OutbreakCentroid(u) {
    select avg(e.posx) as x, avg(e.posy) as y, count(*) as n from E e
    where e.state = I
      and e.posx >= u.posx - SIGHT and e.posx <= u.posx + SIGHT
      and e.posy >= u.posy - SIGHT and e.posy <= u.posy + SIGHT;
  }

  # The whole population's centre of mass (global divisible aggregate).
  aggregate CrowdCentroid(u) {
    select avg(e.posx) as x, avg(e.posy) as y from E e;
  }

  action Expose(u, n) {
    update e where e.key = u.key set exposure += n;
  }
  action Move(u, dx, dy) {
    update e where e.key = u.key set movex += dx, movey += dy;
  }

  function wander(u, salt) {
    perform Move(u, random(salt) mod 3 - 1, random(salt + 1) mod 3 - 1);
  }

  function main(u) {
    if u.state = S then {
      let pressure = InfectedNear(u, RADIUS);
      if pressure > 0 then {
        # Too late to stay ahead of the wave: exposure accrues while
        # fleeing the local outbreak centroid.
        perform Expose(u, pressure);
        let outbreak = OutbreakCentroid(u);
        if outbreak.n > 0 then {
          let away = (u.posx, u.posy) - (outbreak.x, outbreak.y);
          perform Move(u, away.x, away.y);
        }
      }
      else perform wander(u, 10);
    }
    else if u.state = I then {
      # The infected press toward the crowd, which keeps the epidemic
      # wavefront chasing the fleeing susceptibles.
      let c = CrowdCentroid(u);
      perform Move(u, c.x - u.posx, c.y - u.posy);
    }
    else {
      # Recovered and immune: drift back toward the crowd.
      let c = CrowdCentroid(u);
      perform Move(u, c.x - u.posx, c.y - u.posy);
    }
  }
)SGL";

Schema EpidemicSchema() {
  Schema s;
  (void)s.AddAttribute("state", CombineType::kConst);
  (void)s.AddAttribute("posx", CombineType::kConst);
  (void)s.AddAttribute("posy", CombineType::kConst);
  (void)s.AddAttribute("sick", CombineType::kConst);
  (void)s.AddAttribute("exposure", CombineType::kSum);
  (void)s.AddAttribute("movex", CombineType::kSum);
  (void)s.AddAttribute("movey", CombineType::kSum);
  return s;
}

/// exposure -> infection with a per-unit deterministic dice roll; sick
/// units count down to immunity.
class EpidemicMechanics : public GameMechanics {
 public:
  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override {
    (void)buffer;
    const Schema& s = table->schema();
    const AttrId state = s.Find("state");
    const AttrId sick = s.Find("sick");
    const AttrId exposure = s.Find("exposure");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      double st = table->Get(r, state);
      if (st == kSusceptible) {
        double pressure = table->Get(r, exposure);
        if (pressure <= 0) continue;
        // Chance of infection grows with the number of infected
        // neighbours: min(3 * pressure, 9) in 10.
        int64_t threshold = static_cast<int64_t>(pressure) * 3;
        if (threshold > 9) threshold = 9;
        if (rnd.DrawBounded(table->KeyAt(r), 9001, 10) < threshold) {
          table->Set(r, state, kInfected);
          table->Set(r, sick, static_cast<double>(kSickTicks));
        }
      } else if (st == kInfected) {
        double remaining = table->Get(r, sick) - 1;
        if (remaining <= 0) {
          table->Set(r, state, kRecovered);
          table->Set(r, sick, 0);
        } else {
          table->Set(r, sick, remaining);
        }
      }
    }
    return Status::OK();
  }

  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
    (void)table;
    (void)rnd;
    return Status::OK();
  }
};

Result<EnvironmentTable> EpidemicWorld(const ScenarioParams& params) {
  EnvironmentTable table(EpidemicSchema());
  Xoshiro256 rng(params.seed);
  const int64_t side = params.GridSide();
  scenario_internal::DistinctCells cells(&rng, side);
  // Patient zeros: 5% of the population (at least one), scattered like
  // everyone else, staggered along their sickness countdown.
  const int32_t initial_infected =
      params.units / 20 > 0 ? params.units / 20 : 1;
  for (int32_t i = 0; i < params.units; ++i) {
    SGL_ASSIGN_OR_RETURN(auto cell, cells.Draw());
    auto [x, y] = cell;
    bool infected = i < initial_infected;
    double sick = infected ? 1 + (i % kSickTicks) : 0;
    SGL_RETURN_NOT_OK(
        table
            .AddRow({infected ? kInfected : kSusceptible,
                     static_cast<double>(x), static_cast<double>(y), sick, 0,
                     0, 0})
            .status());
  }
  return table;
}

Status EpidemicInvariant(const ScenarioParams& params, const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  if (t.NumRows() != params.units) {
    return Status::ExecutionError("epidemic population changed: ", t.NumRows(),
                                  " of ", params.units);
  }
  SGL_RETURN_NOT_OK(scenario_internal::CheckOnGrid(t, params.GridSide()));
  SGL_RETURN_NOT_OK(scenario_internal::CheckCodeAttr(
      t, "state", {kSusceptible, kInfected, kRecovered}));
  const Schema& s = t.schema();
  const AttrId state = s.Find("state");
  const AttrId sick = s.Find("sick");
  for (RowId r = 0; r < t.NumRows(); ++r) {
    double st = t.Get(r, state), countdown = t.Get(r, sick);
    bool consistent = st == kInfected
                          ? countdown >= 1 && countdown <= kSickTicks
                          : countdown == 0;
    if (!consistent) {
      return Status::ExecutionError("unit ", t.KeyAt(r), ": state ", st,
                                    " inconsistent with sick countdown ",
                                    countdown);
    }
  }
  return Status::OK();
}

}  // namespace

Status RegisterEpidemicScenario(ScenarioRegistry* registry) {
  ScenarioDef def;
  def.name = "epidemic";
  def.description =
      "SIR contagion: susceptibles count infected neighbours in a radius "
      "(stackable exposure effect), flee the outbreak centroid, sicken and "
      "recover immune";
  def.world = EpidemicWorld;
  def.configure = [](const ScenarioParams& params, SimulationBuilder& b) {
    SGL_ASSIGN_OR_RETURN(Script script,
                         CompileScript(kEpidemicScript, EpidemicSchema()));
    const int64_t side = params.GridSide();
    b.config().grid_width = side;
    b.config().grid_height = side;
    b.config().step_per_tick = 2.0;
    b.AddScript("epidemic", std::move(script))
        .SetMechanics(std::make_unique<EpidemicMechanics>());
    return Status::OK();
  };
  def.invariant = EpidemicInvariant;
  return registry->Register(std::move(def));
}

}  // namespace sgl
