// A market economy: traders price goods off *global* sum aggregates and
// settle trades by direct-key effects.
//
// Unlike the spatial workloads, every aggregate here ranges over all of
// E: total supply (sum of goods), total cash (the demand proxy), and an
// argmin probe for the poorest solvent buyer. That exercises the
// evaluators' non-spatial paths — global divisible sums shared across
// every probing unit, and an extremum probe with a one-dimensional
// range constraint (e.cash >= price) instead of a 2-D box. There is no
// grid at all: the movement phase is disabled through the scenario's
// builder hook.
//
// Trades conserve both goods and cash by construction — the seller
// debits itself and credits the buyer in one action — and the invariant
// checker recomputes the initial totals from the (deterministic) world
// generator and demands exact conservation. A buyer picked by several
// sellers in one tick may go cash-negative (it was solvent at decision
// time; all decisions read frozen pre-tick state); that is the
// simultaneous-action semantics of Section 2.2, not an error.
#include <memory>

#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

const char* kMarketScript = R"SGL(
  # One scan's worth of global market state, shared by every trader.
  aggregate Market(u) {
    select sum(e.goods) as supply, sum(e.cash) as demand, count(*) as n
    from E e;
  }

  # The poorest trader still able to pay `p` (extremum probe with a
  # 1-D range constraint on cash).
  aggregate PoorestBuyer(u, p) {
    select argmin(e.goods) from E e
    where e.cash >= p;
  }

  # Settlement is symmetric, so goods and cash are conserved exactly.
  action SellTo(u, buyer, p) {
    update e where e.key = u.key set sold += 1, revenue += p;
    update e where e.key = buyer set bought += 1, spent += p;
  }

  function main(u) {
    let m = Market(u);
    # Integer price: cash chasing each unit of goods, clamped to [1, 9].
    let price = max(1, min(9, floor(m.demand / max(1, m.supply))));
    # Hold more goods than the market average? Sell one to the poorest
    # solvent buyer. (u.goods > supply/n, kept integral by cross-
    # multiplying.)
    if u.goods * m.n > m.supply then {
      let b = PoorestBuyer(u, price);
      if b.found = 1 then
        perform SellTo(u, b.key, price);
    }
  }
)SGL";

Schema MarketSchema() {
  Schema s;
  (void)s.AddAttribute("goods", CombineType::kConst);
  (void)s.AddAttribute("cash", CombineType::kConst);
  (void)s.AddAttribute("sold", CombineType::kSum);
  (void)s.AddAttribute("bought", CombineType::kSum);
  (void)s.AddAttribute("revenue", CombineType::kSum);
  (void)s.AddAttribute("spent", CombineType::kSum);
  return s;
}

class MarketMechanics : public GameMechanics {
 public:
  Status ApplyEffects(EnvironmentTable* table, const EffectBuffer& buffer,
                      const TickRandom& rnd) override {
    (void)buffer;
    (void)rnd;
    const Schema& s = table->schema();
    const AttrId goods = s.Find("goods");
    const AttrId cash = s.Find("cash");
    const AttrId sold = s.Find("sold");
    const AttrId bought = s.Find("bought");
    const AttrId revenue = s.Find("revenue");
    const AttrId spent = s.Find("spent");
    for (RowId r = 0; r < table->NumRows(); ++r) {
      table->Set(r, goods, table->Get(r, goods) + table->Get(r, bought) -
                               table->Get(r, sold));
      table->Set(r, cash, table->Get(r, cash) + table->Get(r, revenue) -
                              table->Get(r, spent));
    }
    return Status::OK();
  }

  Status EndTick(EnvironmentTable* table, const TickRandom& rnd) override {
    (void)table;
    (void)rnd;
    return Status::OK();
  }
};

Result<EnvironmentTable> MarketWorld(const ScenarioParams& params) {
  EnvironmentTable table(MarketSchema());
  Xoshiro256 rng(params.seed);
  for (int32_t i = 0; i < params.units; ++i) {
    double goods = static_cast<double>(1 + rng.NextBounded(10));
    double cash = static_cast<double>(10 + rng.NextBounded(40));
    SGL_RETURN_NOT_OK(table.AddRow({goods, cash, 0, 0, 0, 0}).status());
  }
  return table;
}

Status MarketInvariant(const ScenarioParams& params, const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  if (t.NumRows() != params.units) {
    return Status::ExecutionError("market population changed: ", t.NumRows(),
                                  " of ", params.units);
  }
  // Recompute the initial endowments from the deterministic generator.
  SGL_ASSIGN_OR_RETURN(EnvironmentTable initial, MarketWorld(params));
  const Schema& s = t.schema();
  const AttrId goods = s.Find("goods");
  const AttrId cash = s.Find("cash");
  double goods_now = 0, cash_now = 0, goods_then = 0, cash_then = 0;
  for (RowId r = 0; r < t.NumRows(); ++r) {
    double g = t.Get(r, goods);
    if (g < 0) {
      return Status::ExecutionError("trader ", t.KeyAt(r),
                                    " oversold: goods = ", g);
    }
    goods_now += g;
    cash_now += t.Get(r, cash);
    goods_then += initial.Get(r, goods);
    cash_then += initial.Get(r, cash);
  }
  if (goods_now != goods_then) {
    return Status::ExecutionError("goods not conserved: ", goods_now, " vs ",
                                  goods_then);
  }
  if (cash_now != cash_then) {
    return Status::ExecutionError("cash not conserved: ", cash_now, " vs ",
                                  cash_then);
  }
  return Status::OK();
}

}  // namespace

Status RegisterMarketScenario(ScenarioRegistry* registry) {
  ScenarioDef def;
  def.name = "market";
  def.description =
      "traders price goods off global-sum supply/demand aggregates and "
      "settle with the poorest solvent buyer (argmin probe); goods and cash "
      "are conserved exactly, no spatial grid";
  def.world = MarketWorld;
  def.configure = [](const ScenarioParams& params, SimulationBuilder& b) {
    (void)params;
    SGL_ASSIGN_OR_RETURN(Script script,
                         CompileScript(kMarketScript, MarketSchema()));
    // No positions: drop the movement phase entirely.
    b.config().move_x_attr.clear();
    b.config().move_y_attr.clear();
    b.AddScript("market", std::move(script))
        .SetMechanics(std::make_unique<MarketMechanics>());
    return Status::OK();
  };
  def.invariant = MarketInvariant;
  return registry->Register(std::move(def));
}

}  // namespace sgl
