// Internal helpers shared by the builtin scenario world generators and
// invariant checkers (not part of the public scenario API).
#ifndef SGL_SCENARIO_SCENARIO_WORLD_H_
#define SGL_SCENARIO_SCENARIO_WORLD_H_

#include <cstdint>
#include <set>
#include <utility>

#include "env/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace sgl {
namespace scenario_internal {

/// Draws distinct random cells on a square grid (every builtin world
/// places units on unique cells so collision handling starts clean).
class DistinctCells {
 public:
  DistinctCells(Xoshiro256* rng, int64_t side) : rng_(rng), side_(side) {}

  /// Anywhere on the grid.
  Result<std::pair<int64_t, int64_t>> Draw() { return DrawInBand(0, side_); }

  /// x confined to [x0, x0 + width); y anywhere. Errors out instead of
  /// spinning forever when the band is (effectively) full — with any
  /// free cell left, the attempt bound fails with probability
  /// (1 - 1/cells)^(20*cells) ~ e^-20, so workloads at sane densities
  /// never see it.
  Result<std::pair<int64_t, int64_t>> DrawInBand(int64_t x0, int64_t width) {
    const int64_t cells = width * side_;
    for (int64_t attempt = 0; attempt < 1000 + 20 * cells; ++attempt) {
      int64_t x = x0 + rng_->NextBounded(width);
      int64_t y = rng_->NextBounded(side_);
      if (used_.insert({x, y}).second) return std::make_pair(x, y);
    }
    return Status::Invalid("world generator ran out of free cells in the ",
                           width, "x", side_, " band at x=", x0,
                           " (density too high for the unit count)");
  }

  /// Reserve a specific cell (fixed landmarks: exits, flags, bases).
  bool Claim(int64_t x, int64_t y) { return used_.insert({x, y}).second; }

 private:
  Xoshiro256* rng_;
  int64_t side_;
  std::set<std::pair<int64_t, int64_t>> used_;
};

/// Every row's (posx, posy) lies on the integer grid [0, side)^2.
inline Status CheckOnGrid(const EnvironmentTable& table, int64_t side) {
  const AttrId posx = table.schema().Find("posx");
  const AttrId posy = table.schema().Find("posy");
  if (posx < 0 || posy < 0) return Status::OK();
  for (RowId r = 0; r < table.NumRows(); ++r) {
    double x = table.Get(r, posx), y = table.Get(r, posy);
    if (x < 0 || x >= static_cast<double>(side) || y < 0 ||
        y >= static_cast<double>(side)) {
      return Status::ExecutionError("unit ", table.KeyAt(r),
                                    " left the grid: (", x, ", ", y,
                                    ") not in [0, ", side, ")^2");
    }
  }
  return Status::OK();
}

/// `attr` of every row is one of the integer codes in `allowed`.
inline Status CheckCodeAttr(const EnvironmentTable& table, const char* attr,
                            std::initializer_list<double> allowed) {
  const AttrId id = table.schema().Find(attr);
  if (id < 0) {
    return Status::Invalid("invariant: no attribute '", attr, "'");
  }
  for (RowId r = 0; r < table.NumRows(); ++r) {
    double v = table.Get(r, id);
    bool ok = false;
    for (double a : allowed) ok = ok || v == a;
    if (!ok) {
      return Status::ExecutionError("unit ", table.KeyAt(r), ": ", attr, " = ",
                                    v, " is not a legal code");
    }
  }
  return Status::OK();
}

}  // namespace scenario_internal
}  // namespace sgl

#endif  // SGL_SCENARIO_SCENARIO_WORLD_H_
