// Registry wrappers for the Section 3.2 battle case study (src/game/):
// the classic mixed-arms "battle" and the knight-heavy "formation"
// variant the formation example studies. Registering them here puts the
// original demos on the same bench_suite / scenario_test treadmill as
// every new workload.
#include "game/battle.h"
#include "scenario/scenario.h"
#include "scenario/scenario_world.h"
#include "sgl/analyzer.h"

namespace sgl {

namespace {

ScenarioConfig ToBattleConfig(const ScenarioParams& params,
                              double knight_fraction, double archer_fraction) {
  ScenarioConfig config;
  config.num_units = params.units;
  config.density = params.density;
  config.knight_fraction = knight_fraction;
  config.archer_fraction = archer_fraction;
  config.seed = params.seed;
  return config;
}

Status ConfigureBattle(const ScenarioParams& params, SimulationBuilder& b) {
  SGL_ASSIGN_OR_RETURN(Script script,
                       CompileScript(BattleScriptSource(), BattleSchema()));
  const int64_t side = params.GridSide();
  b.config().grid_width = side;
  b.config().grid_height = side;
  b.config().step_per_tick = D20::kWalkPerTick;
  b.AddScript("battle", std::move(script))
      .SetMechanics(std::make_unique<BattleMechanics>(side, side,
                                                      /*resurrect=*/true));
  return Status::OK();
}

Status BattleInvariant(const ScenarioParams& params, const Simulation& sim) {
  const EnvironmentTable& t = sim.table();
  if (t.NumRows() != params.units) {
    return Status::ExecutionError("resurrecting battle lost units: ",
                                  t.NumRows(), " of ", params.units);
  }
  SGL_RETURN_NOT_OK(scenario_internal::CheckOnGrid(t, params.GridSide()));
  SGL_RETURN_NOT_OK(scenario_internal::CheckCodeAttr(t, "player", {0, 1}));
  SGL_RETURN_NOT_OK(scenario_internal::CheckCodeAttr(t, "unittype", {0, 1, 2}));
  const Schema& s = t.schema();
  const AttrId health = s.Find("health");
  const AttrId maxhealth = s.Find("maxhealth");
  const AttrId cooldown = s.Find("cooldown");
  for (RowId r = 0; r < t.NumRows(); ++r) {
    double h = t.Get(r, health);
    if (h <= 0 || h > t.Get(r, maxhealth)) {
      return Status::ExecutionError("unit ", t.KeyAt(r),
                                    ": health out of range: ", h);
    }
    if (t.Get(r, cooldown) < 0) {
      return Status::ExecutionError("unit ", t.KeyAt(r), ": negative cooldown");
    }
  }
  return Status::OK();
}

}  // namespace

Status RegisterBattleScenarios(ScenarioRegistry* registry) {
  ScenarioDef battle;
  battle.name = "battle";
  battle.description =
      "Section 3.2 RTS battle: knights, archers, healers; ~10 aggregate "
      "probes per unit per tick (counts, centroids, stddev, nearest, argmin)";
  battle.world = [](const ScenarioParams& params) {
    return BuildScenario(ToBattleConfig(params, 0.4, 0.4));
  };
  battle.configure = ConfigureBattle;
  battle.invariant = BattleInvariant;
  SGL_RETURN_NOT_OK(registry->Register(std::move(battle)));

  ScenarioDef formation;
  formation.name = "formation";
  formation.description =
      "battle variant weighted toward knights (50/40/10 mix): archers keep "
      "the knight line between themselves and the enemy — emergent "
      "coordination from per-unit centroid queries";
  formation.world = [](const ScenarioParams& params) {
    return BuildScenario(ToBattleConfig(params, 0.5, 0.4));
  };
  formation.configure = ConfigureBattle;
  formation.invariant = BattleInvariant;
  return registry->Register(std::move(formation));
}

}  // namespace sgl
