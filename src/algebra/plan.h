// The bag algebra of Section 5.1 and the algebraic optimizer of 5.2.
//
// An SGL script translates into an expression over multiset operators:
//
//   [[f1; f2]]⊕(E)            = [[f1]]⊕(E) ⊕ [[f2]]⊕(E)
//   [[if φ then f]]⊕(E)       = [[f]]⊕(σφ(E))
//   [[(let A = a) f]]⊕(E)     = [[f]]⊕(π∗,a(∗) as A(E))
//
// yielding the Figure 6(a) shape: a ⊕ of action leaves, each at the end
// of a chain of σ / π∗,agg(∗) operators rooted at the Scan of E. Chains
// share their common prefixes (shared_ptr nodes), so the plan is a DAG.
//
// Rewrites (Figure 6 (a)→(d), Figure 7):
//   * aggregate push-down / pruning — a π∗,agg(∗) moves below every σ
//     that does not reference its column, and disappears from branches
//     that never read it (6(a)→6(b); the lazy-aggregates optimization);
//   * common-aggregate factoring — structurally identical π∗,agg(∗)
//     operators across branches are assigned one shared signature id
//     (the multi-query optimization the physical planner exploits);
//   * total-action simplification — an action that updates exactly the
//     rows it is applied to satisfies act⊕(R) ⊕ R = act⊕(R) (rule (10)
//     collapses the final ⊕-with-E for that branch; 6(c)→6(d)).
//
// This module is the paper's *logical* layer: it exists to make the
// rewrites explicit, printable (EXPLAIN) and testable. The physical
// execution path — index families, probes, action batching — lives in
// src/opt and is independently verified bit-exact against the reference
// interpreter.
#ifndef SGL_ALGEBRA_PLAN_H_
#define SGL_ALGEBRA_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sgl/analyzer.h"
#include "util/status.h"

namespace sgl {

enum class PlanOp : uint8_t {
  kScan,       // E
  kSelect,     // σφ
  kExtend,     // π∗,t(∗) as A  — scalar let
  kExtendAgg,  // π∗,agg(∗) as A — aggregate let
  kAction,     // act⊕ leaf
  kCombine,    // ⊕ of the children (the root)
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

struct PlanNode {
  PlanOp op;
  PlanPtr input;              // all but kScan/kCombine
  std::vector<PlanPtr> children;  // kCombine

  const Cond* cond = nullptr;     // kSelect
  bool negated = false;           // kSelect: σ¬φ (else branch)
  std::string column;             // kExtend / kExtendAgg output name
  const Expr* expr = nullptr;     // kExtend term / kExtendAgg call
  int32_t action_index = -1;      // kAction
  std::vector<const Expr*> action_args;  // kAction argument terms
  bool action_total = false;  // kAction: act⊕(R) ⊕ R = act⊕(R) applies

  int32_t shared_signature = -1;  // kExtendAgg: factoring group id
};

/// Optional per-node annotation hook for ToString: return a non-empty
/// string to attach "{physical: ...}" to a node's line. The engine uses
/// it to print, under each π∗,agg(∗) operator, the physical operator the
/// evaluator chose for it (index kind, family, and — in adaptive mode —
/// the latest cost decision with estimated vs observed statistics).
using PlanAnnotator = std::function<std::string(const PlanNode&)>;

/// A translated script plan: the Figure 6-style DAG plus bookkeeping.
struct LogicalPlan {
  PlanPtr root;  // kCombine
  const Script* script = nullptr;

  /// Operator count (DAG nodes counted once) — the rewrite tests measure
  /// work saved structurally.
  int32_t NumNodes() const;
  /// Number of kExtendAgg nodes (after pruning) and of distinct shared
  /// signatures (after factoring).
  int32_t NumAggregateNodes() const;
  int32_t NumSharedSignatures() const;

  /// Multi-line tree rendering in the style of Figure 6. The annotated
  /// overload appends each node's physical-operator note (see
  /// PlanAnnotator); the plain one renders the logical plan alone.
  std::string ToString() const;
  std::string ToString(const PlanAnnotator& annotate) const;
};

/// Translate the (analyzed, normalized) script's main function into the
/// Figure 6(a) logical plan. User functions are inlined; their scalar
/// parameters become π∗,t(∗) extensions.
Result<LogicalPlan> TranslateScript(const Script& script);

/// Apply the rewrites described above, in order: prune/push-down, factor
/// common aggregates, mark total actions. Returns a new plan.
Result<LogicalPlan> OptimizePlan(const LogicalPlan& plan);

}  // namespace sgl

#endif  // SGL_ALGEBRA_PLAN_H_
