#include "algebra/plan.h"

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "opt/signature.h"
#include "util/string_util.h"

namespace sgl {

namespace {

// ------------------------------------------------------------ name usage

void CollectNames(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kVarRef) out->insert(e.name);
  for (const ExprPtr& a : e.args) {
    if (a) CollectNames(*a, out);
  }
}

void CollectNamesCond(const Cond& c, std::set<std::string>* out) {
  if (c.lhs) CollectNames(*c.lhs, out);
  if (c.rhs) CollectNames(*c.rhs, out);
  if (c.left) CollectNamesCond(*c.left, out);
  if (c.right) CollectNamesCond(*c.right, out);
}

// -------------------------------------------------------- canonical keys

void ExprKey(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    // Round-trip literal precision (opt/signature.h): distinct constants
    // must never render alike, or the common-aggregate factoring below
    // would merge operators with different semantics.
    case ExprKind::kNumber: PrintCanonicalNumber(e.number, os); break;
    case ExprKind::kVarRef: os << "v:" << e.name; break;
    case ExprKind::kAttrRef: os << "a:" << e.tuple_var << "." << e.attr; break;
    case ExprKind::kFieldAccess:
      ExprKey(*e.args[0], os);
      os << "." << e.attr;
      break;
    case ExprKind::kUnaryMinus:
      os << "-(";
      ExprKey(*e.args[0], os);
      os << ")";
      break;
    case ExprKind::kBinary:
      os << "(";
      ExprKey(*e.args[0], os);
      os << "op" << static_cast<int>(e.op);
      ExprKey(*e.args[1], os);
      os << ")";
      break;
    case ExprKind::kCall:
      os << e.name << "(";
      for (const ExprPtr& a : e.args) {
        if (a) ExprKey(*a, os);
        os << ",";
      }
      os << ")";
      break;
    case ExprKind::kTuple:
      os << "<";
      ExprKey(*e.args[0], os);
      os << ",";
      ExprKey(*e.args[1], os);
      os << ">";
      break;
  }
}

std::string ExprKeyOf(const Expr& e) {
  std::ostringstream os;
  ExprKey(e, os);
  return os.str();
}

void CondKey(const Cond& c, std::ostream& os) {
  switch (c.kind) {
    case CondKind::kTrue: os << "T"; break;
    case CondKind::kCompare:
      os << "[";
      ExprKey(*c.lhs, os);
      os << "c" << static_cast<int>(c.op);
      ExprKey(*c.rhs, os);
      os << "]";
      break;
    case CondKind::kNot:
      os << "!";
      CondKey(*c.left, os);
      break;
    case CondKind::kAnd:
    case CondKind::kOr:
      os << (c.kind == CondKind::kAnd ? "&" : "|");
      CondKey(*c.left, os);
      CondKey(*c.right, os);
      break;
  }
}

// ------------------------------------------------------------ rendering

std::string DescribeExprShort(const Expr& e) {
  std::string key = ExprKeyOf(e);
  if (key.size() > 48) key = key.substr(0, 45) + "...";
  return key;
}

std::string DescribeCondShort(const Cond& c) {
  std::ostringstream os;
  CondKey(c, os);
  std::string key = os.str();
  if (key.size() > 48) key = key.substr(0, 45) + "...";
  return key;
}

// ------------------------------------------------------------ translator

class Translator {
 public:
  explicit Translator(const Script& script) : script_(&script) {}

  Result<LogicalPlan> Run() {
    if (script_->main_index < 0) {
      return Status::PlanError("script has no main function");
    }
    PlanPtr scan = std::make_shared<PlanNode>();
    scan->op = PlanOp::kScan;
    const FunctionDecl& main = script_->program.functions[script_->main_index];
    SGL_RETURN_NOT_OK(WalkStmt(*main.body, scan, 0));
    LogicalPlan plan;
    plan.script = script_;
    plan.root = std::make_shared<PlanNode>();
    plan.root->op = PlanOp::kCombine;
    plan.root->children = std::move(leaves_);
    return plan;
  }

 private:
  static constexpr int32_t kMaxInlineDepth = 64;

  /// Walk one statement; `chain` is the operator pipeline built so far.
  /// Lets mutate the chain for subsequent statements of the same block;
  /// performs append an action leaf.
  Status WalkStmt(const Stmt& s, PlanPtr& chain, int32_t depth) {
    switch (s.kind) {
      case StmtKind::kLet: {
        PlanPtr node = std::make_shared<PlanNode>();
        node->op = (s.let_value->kind == ExprKind::kCall &&
                    s.let_value->is_aggregate)
                       ? PlanOp::kExtendAgg
                       : PlanOp::kExtend;
        node->input = chain;
        node->column = s.let_name;
        node->expr = s.let_value.get();
        chain = node;
        return Status::OK();
      }
      case StmtKind::kIf: {
        PlanPtr then_sel = std::make_shared<PlanNode>();
        then_sel->op = PlanOp::kSelect;
        then_sel->input = chain;
        then_sel->cond = s.cond.get();
        PlanPtr then_chain = then_sel;
        SGL_RETURN_NOT_OK(WalkStmt(*s.then_branch, then_chain, depth));
        if (s.else_branch != nullptr) {
          PlanPtr else_sel = std::make_shared<PlanNode>();
          else_sel->op = PlanOp::kSelect;
          else_sel->input = chain;
          else_sel->cond = s.cond.get();
          else_sel->negated = true;
          PlanPtr else_chain = else_sel;
          SGL_RETURN_NOT_OK(WalkStmt(*s.else_branch, else_chain, depth));
        }
        return Status::OK();
      }
      case StmtKind::kBlock: {
        PlanPtr local = chain;  // lets scope to the rest of the block
        for (const StmtPtr& child : s.body) {
          SGL_RETURN_NOT_OK(WalkStmt(*child, local, depth));
        }
        return Status::OK();
      }
      case StmtKind::kPerform: {
        if (s.target_action >= 0) {
          PlanPtr leaf = std::make_shared<PlanNode>();
          leaf->op = PlanOp::kAction;
          leaf->input = chain;
          leaf->action_index = s.target_action;
          for (size_t i = 1; i < s.args.size(); ++i) {
            leaf->action_args.push_back(s.args[i].get());
          }
          leaves_.push_back(std::move(leaf));
          return Status::OK();
        }
        // Inline the user function: its scalar parameters become π
        // extensions of this chain (no collisions: each inline extends
        // its own branch of the DAG).
        if (depth > kMaxInlineDepth) {
          return Status::PlanError("function inlining exceeded depth ",
                                   kMaxInlineDepth);
        }
        const FunctionDecl& fn =
            script_->program.functions[s.target_function];
        PlanPtr inlined = chain;
        for (size_t i = 1; i < fn.params.size(); ++i) {
          PlanPtr bind = std::make_shared<PlanNode>();
          bind->op = PlanOp::kExtend;
          bind->input = inlined;
          bind->column = fn.params[i];
          bind->expr = s.args[i].get();
          inlined = bind;
        }
        return WalkStmt(*fn.body, inlined, depth + 1);
      }
    }
    return Status::Internal("unreachable");
  }

  const Script* script_;
  std::vector<PlanPtr> leaves_;
};

// -------------------------------------------------------------- rewrites

/// Names read by a node itself (not its inputs).
std::set<std::string> NodeReads(const PlanNode& node) {
  std::set<std::string> names;
  switch (node.op) {
    case PlanOp::kSelect:
      CollectNamesCond(*node.cond, &names);
      break;
    case PlanOp::kExtend:
    case PlanOp::kExtendAgg:
      CollectNames(*node.expr, &names);
      break;
    case PlanOp::kAction:
      for (const Expr* a : node.action_args) CollectNames(*a, &names);
      break;
    default:
      break;
  }
  return names;
}

/// Structural key of a chain node (for prefix re-sharing after rewrites).
std::string NodeKey(const PlanNode& node, const std::string& input_key) {
  std::ostringstream os;
  os << input_key << "|";
  switch (node.op) {
    case PlanOp::kScan:
      os << "scan";
      break;
    case PlanOp::kSelect:
      os << (node.negated ? "sel!" : "sel");
      CondKey(*node.cond, os);
      break;
    case PlanOp::kExtend:
      os << "ext:" << node.column << "=";
      ExprKey(*node.expr, os);
      break;
    case PlanOp::kExtendAgg:
      os << "agg:" << node.column << "=";
      ExprKey(*node.expr, os);
      break;
    case PlanOp::kAction:
      os << "act" << node.action_index;
      for (const Expr* a : node.action_args) {
        ExprKey(*a, os);
        os << ",";
      }
      break;
    case PlanOp::kCombine:
      os << "combine";
      break;
  }
  return os.str();
}

}  // namespace

Result<LogicalPlan> TranslateScript(const Script& script) {
  return Translator(script).Run();
}

Result<LogicalPlan> OptimizePlan(const LogicalPlan& plan) {
  LogicalPlan out;
  out.script = plan.script;
  out.root = std::make_shared<PlanNode>();
  out.root->op = PlanOp::kCombine;

  // Hash-consing pool: chains rebuilt below re-share common prefixes.
  std::unordered_map<std::string, PlanPtr> pool;
  auto intern = [&](PlanPtr node, const std::string& key) -> PlanPtr {
    auto [it, inserted] = pool.emplace(key, node);
    return it->second;
  };

  for (const PlanPtr& leaf : plan.root->children) {
    // Gather the chain scan-first.
    std::vector<const PlanNode*> ops;
    for (const PlanNode* n = leaf.get(); n != nullptr; n = n->input.get()) {
      ops.push_back(n);
    }
    std::reverse(ops.begin(), ops.end());  // ops[0] is the Scan

    // Which extend columns does this branch ever read?
    std::set<std::string> needed;
    for (const PlanNode* n : ops) {
      if (n->op == PlanOp::kSelect || n->op == PlanOp::kAction) {
        std::set<std::string> reads = NodeReads(*n);
        needed.insert(reads.begin(), reads.end());
      }
    }
    // Transitively: an extend whose column is needed makes its own reads
    // needed (extends may reference earlier lets).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const PlanNode* n : ops) {
        if ((n->op == PlanOp::kExtend || n->op == PlanOp::kExtendAgg) &&
            needed.count(n->column) > 0) {
          for (const std::string& r : NodeReads(*n)) {
            changed |= needed.insert(r).second;
          }
        }
      }
    }

    // Rebuild lazily: pending extends are emitted just before the first
    // operator that reads their column (Figure 6(a) -> 6(b): aggregates
    // sink below the selections that gate them); unused extends vanish.
    std::vector<const PlanNode*> pending;
    PlanPtr chain;
    std::string key;
    auto emit = [&](const PlanNode* op) {
      PlanPtr node = std::make_shared<PlanNode>(*op);
      node->input = chain;
      node->children.clear();
      key = NodeKey(*node, key);
      chain = intern(node, key);
    };
    std::function<void(const std::string&)> flush_for =
        [&](const std::string& name) {
          for (size_t i = 0; i < pending.size(); ++i) {
            const PlanNode* p = pending[i];
            if (p == nullptr || p->column != name) continue;
            pending[i] = nullptr;
            for (const std::string& dep : NodeReads(*p)) flush_for(dep);
            emit(p);
            return;
          }
        };
    for (const PlanNode* op : ops) {
      switch (op->op) {
        case PlanOp::kScan:
          emit(op);
          break;
        case PlanOp::kExtend:
        case PlanOp::kExtendAgg:
          if (needed.count(op->column) > 0) pending.push_back(op);
          break;
        case PlanOp::kSelect:
        case PlanOp::kAction:
          for (const std::string& r : NodeReads(*op)) flush_for(r);
          emit(op);
          break;
        case PlanOp::kCombine:
          break;
      }
    }
    out.root->children.push_back(chain);
  }

  // Common-aggregate factoring: identical aggregate expressions share a
  // signature id (the physical layer builds one index family per id).
  // Identity is *structural*: the called declaration contributes its
  // canonical fingerprint (opt/signature.h), not its name, so calls to
  // two declarations that differ only in spelling — aggregate or tuple-
  // variable names — factor into one shared signature, mirroring the
  // dedup rule of the physical families and the cross-script sharing
  // layer.
  std::map<std::string, int32_t> signature_of;
  std::set<const PlanNode*> visited;
  std::function<void(const PlanPtr&)> factor = [&](const PlanPtr& node) {
    if (node == nullptr || !visited.insert(node.get()).second) return;
    if (node->op == PlanOp::kExtendAgg) {
      std::string key;
      const Expr& call = *node->expr;
      if (call.is_aggregate && call.call_id >= 0) {
        std::ostringstream os;
        os << CanonicalAggregateFingerprint(*out.script, call.call_id)
           << "@(";
        for (size_t a = 1; a < call.args.size(); ++a) {
          if (call.args[a]) ExprKey(*call.args[a], os);
          os << ",";
        }
        os << ")";
        key = os.str();
      } else {
        key = ExprKeyOf(call);
      }
      auto [it, inserted] = signature_of.emplace(
          key, static_cast<int32_t>(signature_of.size()));
      node->shared_signature = it->second;
    }
    factor(node->input);
    for (const PlanPtr& c : node->children) factor(c);
  };
  factor(out.root);

  // Total-action marking: act⊕(R) ⊕ R = act⊕(R) when every update of the
  // action touches exactly the performing unit (e.key = u.key), as with
  // MoveInDirection in Example 5.1.
  const Script& script = *out.script;
  for (const PlanPtr& leaf : out.root->children) {
    if (leaf->op != PlanOp::kAction) continue;
    const ActionDecl& decl = script.program.actions[leaf->action_index];
    bool total = true;
    for (const UpdateStmt& update : decl.updates) {
      std::vector<const Cond*> conjuncts;
      FlattenWhere(*update.where, &conjuncts);
      bool self_keyed = false;
      for (const Cond* c : conjuncts) {
        if (c->kind != CondKind::kCompare || c->op != CompareOp::kEq) continue;
        AttrId l, r;
        if (IsPlainAttrRef(*c->lhs, update.row_var, &l) && l == kKeyAttrId &&
            IsPlainAttrRef(*c->rhs, decl.params[0], &r) && r == kKeyAttrId) {
          self_keyed = true;
        }
        if (IsPlainAttrRef(*c->rhs, update.row_var, &l) && l == kKeyAttrId &&
            IsPlainAttrRef(*c->lhs, decl.params[0], &r) && r == kKeyAttrId) {
          self_keyed = true;
        }
      }
      if (!self_keyed) total = false;
    }
    leaf->action_total = total;
  }
  return out;
}

int32_t LogicalPlan::NumNodes() const {
  std::set<const PlanNode*> visited;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (node == nullptr || !visited.insert(node.get()).second) return;
    walk(node->input);
    for (const PlanPtr& c : node->children) walk(c);
  };
  walk(root);
  return static_cast<int32_t>(visited.size());
}

int32_t LogicalPlan::NumAggregateNodes() const {
  std::set<const PlanNode*> visited;
  int32_t count = 0;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (node == nullptr || !visited.insert(node.get()).second) return;
    if (node->op == PlanOp::kExtendAgg) ++count;
    walk(node->input);
    for (const PlanPtr& c : node->children) walk(c);
  };
  walk(root);
  return count;
}

int32_t LogicalPlan::NumSharedSignatures() const {
  std::set<const PlanNode*> visited;
  std::set<int32_t> sigs;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& node) {
    if (node == nullptr || !visited.insert(node.get()).second) return;
    if (node->op == PlanOp::kExtendAgg && node->shared_signature >= 0) {
      sigs.insert(node->shared_signature);
    }
    walk(node->input);
    for (const PlanPtr& c : node->children) walk(c);
  };
  walk(root);
  return static_cast<int32_t>(sigs.size());
}

std::string LogicalPlan::ToString() const { return ToString(nullptr); }

std::string LogicalPlan::ToString(const PlanAnnotator& annotate) const {
  std::ostringstream os;
  os << "⊕  (combine; result ⊕ E applies the tick)\n";
  std::map<const PlanNode*, int32_t> seen;
  for (size_t i = 0; i < root->children.size(); ++i) {
    os << "├─ branch " << i << ":\n";
    // Print each chain leaf-first with indentation; shared prefixes are
    // labelled the first time and referenced afterwards.
    std::vector<const PlanNode*> ops;
    for (const PlanNode* n = root->children[i].get(); n != nullptr;
         n = n->input.get()) {
      ops.push_back(n);
    }
    int depth = 1;
    for (const PlanNode* n : ops) {
      os << Repeat("│  ", 1) << Repeat("  ", depth++);
      auto it = seen.find(n);
      if (it != seen.end()) {
        os << "(shared prefix #" << it->second << ")\n";
        break;
      }
      seen.emplace(n, static_cast<int32_t>(seen.size()));
      switch (n->op) {
        case PlanOp::kScan:
          os << "Scan(E)";
          break;
        case PlanOp::kSelect:
          os << (n->negated ? "σ¬" : "σ") << "("
             << DescribeCondShort(*n->cond) << ")";
          break;
        case PlanOp::kExtend:
          os << "π∗," << DescribeExprShort(*n->expr) << " as " << n->column;
          break;
        case PlanOp::kExtendAgg:
          os << "π∗,agg[" << DescribeExprShort(*n->expr) << "] as "
             << n->column;
          if (n->shared_signature >= 0) {
            os << "   {sig #" << n->shared_signature << "}";
          }
          break;
        case PlanOp::kAction:
          os << "act⊕ "
             << script->program.actions[n->action_index].name;
          if (n->action_total) os << "   [total: ⊕E elided, rule (10)]";
          break;
        case PlanOp::kCombine:
          os << "⊕";
          break;
      }
      if (annotate) {
        std::string note = annotate(*n);
        if (!note.empty()) os << "   {physical: " << note << "}";
      }
      os << "  #" << seen[n] << "\n";
    }
  }
  return os.str();
}

}  // namespace sgl
