// Flight recorder: a fixed-size ring of recent per-tick summaries,
// dumped to a JSON artifact when something goes wrong (a Tick() error or
// a scenario invariant violation). It answers "what was the engine doing
// just before the failure" without paying tracing overhead during
// normal runs: each RecordTick snapshots the metrics registry and keeps
// only the nonzero deltas against the previous tick, so every record
// carries the tick's phase timings, probe/memo/VM activity, and row
// count in a few hundred bytes.
#ifndef SGL_OBS_FLIGHT_RECORDER_H_
#define SGL_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace sgl {
namespace obs {

class FlightRecorder {
 public:
  /// Keeps summaries of the last `capacity` ticks; `metrics` must
  /// outlive the recorder.
  FlightRecorder(const MetricsRegistry* metrics, int32_t capacity);

  /// Record one completed tick. Called by the runner thread after the
  /// phase pipeline finishes (never concurrently with metric writers).
  void RecordTick(int64_t tick, int64_t ns, int64_t rows);

  /// Records currently held, oldest first.
  int32_t size() const { return static_cast<int32_t>(ring_.size()); }

  std::string ToJson(const std::string& reason) const;
  Status Dump(const std::string& path, const std::string& reason) const;

 private:
  struct TickRecord {
    int64_t tick = 0;
    int64_t ns = 0;
    int64_t rows = 0;
    // Nonzero metric deltas vs the previous recorded tick, name-sorted.
    std::vector<std::pair<std::string, int64_t>> deltas;
  };

  const MetricsRegistry* metrics_;
  size_t capacity_;
  std::vector<TickRecord> ring_;  // ring_[ (start_ + i) % capacity_ ]
  size_t start_ = 0;
  std::vector<std::pair<std::string, int64_t>> prev_;
};

}  // namespace obs
}  // namespace sgl

#endif  // SGL_OBS_FLIGHT_RECORDER_H_
