// Structured tracing: bounded in-memory span/instant events exported as
// Chrome trace-event JSON, which loads directly in Perfetto or
// chrome://tracing.
//
// Cost model: the engine holds a Tracer* that is null unless
// SimulationConfig::trace_path is set, and every emit site — including
// SpanScope's constructor and destructor — is a branch on that pointer,
// so the disabled path is a compare-against-null per site and nothing
// else (no clock reads, no string construction). When enabled, each
// shard appends to its own bounded event vector: shard s is written only
// by the worker running chunk s inside a ParallelFor (which joins before
// the runner touches anything), and by the tick runner for shard 0
// outside parallel regions, so the hot path takes no locks. A full shard
// drops the event and counts the drop instead of growing without bound.
//
// Track layout: the tick runner emits tick and phase spans on tid 0;
// chunk c of the parallel decision phase emits its span on tid 1 + c, so
// the Perfetto view reads as one coordinator track over per-worker
// tracks. Timestamps are steady_clock ns since the tracer's epoch.
#ifndef SGL_OBS_TRACE_H_
#define SGL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sgl {
namespace obs {

struct TraceEvent {
  std::string name;
  int64_t ts_ns = 0;   // steady ns since the tracer epoch
  int64_t dur_ns = -1; // complete ("X") span; -1 marks an instant ("i")
  int32_t tid = 0;     // 0 = tick runner; 1 + chunk for worker spans
  std::string args_json;  // preformatted JSON object, or empty
};

class Tracer {
 public:
  static constexpr int64_t kDefaultMaxEventsPerShard = 1 << 16;

  explicit Tracer(int64_t max_events_per_shard = kDefaultMaxEventsPerShard);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Size the per-shard sinks; build-time only (shard 0 always exists).
  void SetNumShards(int32_t num_shards);

  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Append to `shard`'s sink (bounded; drops and counts when full).
  /// Out-of-range shards fold into shard 0.
  void Emit(int32_t shard, TraceEvent event);

  void Instant(const char* name, int32_t tid, int32_t shard,
               std::string args_json = std::string());

  /// Merged events across shards, ordered ts ascending with longer spans
  /// first at equal timestamps (parents before children). Call between
  /// ticks or after the run — never while workers are emitting.
  std::vector<TraceEvent> Collect() const;

  int64_t dropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}).
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct alignas(64) Shard {
    std::vector<TraceEvent> events;
    int64_t dropped = 0;
  };

  std::chrono::steady_clock::time_point epoch_;
  int64_t max_events_per_shard_;
  std::vector<Shard> shards_;
};

/// RAII span: records the start time at construction and emits one
/// complete event at destruction. A null tracer makes every member a
/// no-op branch — the disabled-tracing fast path.
class SpanScope {
 public:
  /// `name` must outlive the scope (phase names and string literals do).
  SpanScope(Tracer* tracer, const char* name, int32_t tid, int32_t shard)
      : tracer_(tracer), name_(name), tid_(tid), shard_(shard) {
    if (tracer_ != nullptr) start_ns_ = tracer_->NowNs();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (tracer_ == nullptr) return;
    TraceEvent e;
    e.name = name_;
    e.ts_ns = start_ns_;
    e.dur_ns = tracer_->NowNs() - start_ns_;
    e.tid = tid_;
    e.args_json = std::move(args_json_);
    tracer_->Emit(shard_, std::move(e));
  }

  void set_args_json(std::string args_json) {
    if (tracer_ != nullptr) args_json_ = std::move(args_json);
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::string args_json_;
  int64_t start_ns_ = 0;
  int32_t tid_;
  int32_t shard_;
};

}  // namespace obs
}  // namespace sgl

#endif  // SGL_OBS_TRACE_H_
