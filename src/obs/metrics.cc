#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sgl {
namespace obs {

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.count;
  return total;
}

int64_t Histogram::sum() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.sum;
  return total;
}

int64_t Histogram::bucket_count(size_t b) const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    if (b < s.buckets.size()) total += s.buckets[b];
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count = 0;
    s.sum = 0;
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     uint32_t flags) {
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
    slot->name_ = name;
    slot->slots_.resize(static_cast<size_t>(num_shards_));
  }
  slot->flags_ |= flags;
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, uint32_t flags) {
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
    slot->name_ = name;
  }
  slot->flags_ |= flags;
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> edges,
                                         uint32_t flags) {
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram());
    slot->name_ = name;
    slot->edges_ = std::move(edges);
    slot->shards_.resize(static_cast<size_t>(num_shards_));
    for (Histogram::Shard& s : slot->shards_) {
      s.buckets.assign(slot->edges_.size() + 1, 0);
    }
  }
  slot->flags_ |= flags;
  return slot.get();
}

void MetricsRegistry::SetNumShards(int32_t num_shards) {
  num_shards_ = std::max<int32_t>(1, num_shards);
  const size_t n = static_cast<size_t>(num_shards_);
  for (auto& entry : counters_) {
    entry.second->slots_.resize(n);
  }
  for (auto& entry : histograms_) {
    Histogram& h = *entry.second;
    h.shards_.resize(n);
    for (Histogram::Shard& s : h.shards_) {
      if (s.buckets.size() != h.edges_.size() + 1) {
        s.buckets.assign(h.edges_.size() + 1, 0);
      }
    }
  }
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Values(
    bool deterministic_only) const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& entry : counters_) {
    if (deterministic_only &&
        (entry.second->flags() & kMetricExecDependent) != 0) {
      continue;
    }
    out.emplace_back(entry.first, entry.second->value());
  }
  for (const auto& entry : gauges_) {
    if (deterministic_only &&
        (entry.second->flags() & kMetricExecDependent) != 0) {
      continue;
    }
    out.emplace_back(entry.first, entry.second->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string MetricsRegistry::ToJson(bool deterministic_only) const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& entry : counters_) {
    if (deterministic_only &&
        (entry.second->flags() & kMetricExecDependent) != 0) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(entry.first) << "\":" << entry.second->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& entry : gauges_) {
    if (deterministic_only &&
        (entry.second->flags() & kMetricExecDependent) != 0) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(entry.first) << "\":" << entry.second->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& entry : histograms_) {
    const Histogram& h = *entry.second;
    if (deterministic_only && (h.flags() & kMetricExecDependent) != 0) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(entry.first) << "\":{\"edges\":[";
    for (size_t i = 0; i < h.edges().size(); ++i) {
      if (i > 0) os << ",";
      os << h.edges()[i];
    }
    os << "],\"buckets\":[";
    for (size_t b = 0; b <= h.edges().size(); ++b) {
      if (b > 0) os << ",";
      os << h.bucket_count(b);
    }
    os << "],\"count\":" << h.count() << ",\"sum\":" << h.sum() << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Reset() {
  for (auto& entry : counters_) entry.second->Reset();
  for (auto& entry : gauges_) entry.second->Reset();
  for (auto& entry : histograms_) entry.second->Reset();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sgl
