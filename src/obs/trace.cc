#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace sgl {
namespace obs {

Tracer::Tracer(int64_t max_events_per_shard)
    : epoch_(std::chrono::steady_clock::now()),
      max_events_per_shard_(std::max<int64_t>(1, max_events_per_shard)),
      shards_(1) {}

void Tracer::SetNumShards(int32_t num_shards) {
  const size_t n = static_cast<size_t>(std::max<int32_t>(1, num_shards));
  if (n > shards_.size()) shards_.resize(n);
}

void Tracer::Emit(int32_t shard, TraceEvent event) {
  const size_t s = static_cast<size_t>(shard);
  Shard& sink = shards_[s < shards_.size() ? s : 0];
  if (static_cast<int64_t>(sink.events.size()) >= max_events_per_shard_) {
    ++sink.dropped;
    return;
  }
  sink.events.push_back(std::move(event));
}

void Tracer::Instant(const char* name, int32_t tid, int32_t shard,
                     std::string args_json) {
  TraceEvent e;
  e.name = name;
  e.ts_ns = NowNs();
  e.dur_ns = -1;
  e.tid = tid;
  e.args_json = std::move(args_json);
  Emit(shard, std::move(e));
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  size_t total = 0;
  for (const Shard& s : shards_) total += s.events.size();
  out.reserve(total);
  for (const Shard& s : shards_) {
    out.insert(out.end(), s.events.begin(), s.events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.dur_ns > b.dur_ns;
                   });
  return out;
}

int64_t Tracer::dropped() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.dropped;
  return total;
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events = Collect();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ",";
    os << "\n{\"name\":\"" << JsonEscape(e.name) << "\",";
    // Chrome trace-event timestamps are microseconds; keep ns precision
    // through the fractional part.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);
    if (e.dur_ns >= 0) {
      os << "\"ph\":\"X\",\"ts\":" << buf << ",";
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(e.dur_ns) / 1e3);
      os << "\"dur\":" << buf << ",";
    } else {
      os << "\"ph\":\"i\",\"ts\":" << buf << ",\"s\":\"t\",";
    }
    os << "\"pid\":0,\"tid\":" << e.tid;
    if (!e.args_json.empty()) os << ",\"args\":" << e.args_json;
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open trace output file: ", path);
  }
  out << ToJson();
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing trace output file: ", path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sgl
