// Unified metrics registry — the counter substrate of the observability
// layer (src/obs/).
//
// Every subsystem counter that used to live in a bespoke tally struct
// (PhaseStats fields, the indexed provider's probe tallies, the sharing
// memo counters, adaptive decisions, the VM's execution atomics) is a
// named metric in one per-simulation registry: typed handles with
// cache-line-padded per-shard storage, merged on read into one snapshot.
// Handles are raw pointers into the registry and stay valid for its
// lifetime; the write path (Counter::Add on a shard-private slot) is
// exactly the old tally increment — one int64 bump on a cache line no
// other shard touches, no atomics, no locks.
//
// Determinism contract: a metric flagged kMetricExecDependent depends on
// wall-clock time or on the execution schedule (thread count, chunk
// boundaries, memo publish races); every other metric is a pure count of
// simulation events and must be bit-identical across thread counts.
// ToJson(/*deterministic_only=*/true) renders only the deterministic
// subset — the form tests compare across {1,4,8} threads.
//
// Thread safety: Add/Set/Record on distinct shard ids never race (each
// shard owns its padded slot); GetCounter/GetGauge/GetHistogram,
// SetNumShards, and the read-side merges are build-time / between-phase
// operations, single-threaded by construction (same discipline as the
// tally structs this module replaces).
#ifndef SGL_OBS_METRICS_H_
#define SGL_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sgl {
namespace obs {

enum MetricFlags : uint32_t {
  kMetricNone = 0,
  /// The value depends on wall-clock time or the execution schedule
  /// (thread count / chunking / memo races) and is excluded from
  /// deterministic snapshots.
  kMetricExecDependent = 1u << 0,
};

/// Monotonic per-shard event count. Writers on distinct shards touch
/// distinct cache lines; value() merges between phases.
class Counter {
 public:
  void Add(int64_t delta, int32_t shard = 0) {
    const size_t s = static_cast<size_t>(shard);
    // Out-of-range shards (a caller that skipped SetNumShards) fold into
    // slot 0 rather than write past the array; concurrent callers must
    // size their shards first, exactly as with the old tally vectors.
    slots_[s < slots_.size() ? s : 0].v += delta;
  }

  int64_t value() const {
    int64_t total = 0;
    for (const Slot& s : slots_) total += s.v;
    return total;
  }

  void Reset() {
    for (Slot& s : slots_) s.v = 0;
  }

  const std::string& name() const { return name_; }
  uint32_t flags() const { return flags_; }

 private:
  friend class MetricsRegistry;

  /// One cache line per shard: workers bump their own slot without false
  /// sharing (the same layout the bespoke tally structs used).
  struct alignas(64) Slot {
    int64_t v = 0;
  };

  std::string name_;
  uint32_t flags_ = kMetricNone;
  std::vector<Slot> slots_{1};
};

/// A last-value (or running-max) metric, written by the coordinating
/// thread only (e.g. the max parallel fan-out a phase observed).
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void SetMax(int64_t v) {
    if (v > value_) value_ = v;
  }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  const std::string& name() const { return name_; }
  uint32_t flags() const { return flags_; }

 private:
  friend class MetricsRegistry;

  std::string name_;
  uint32_t flags_ = kMetricNone;
  int64_t value_ = 0;
};

/// A histogram over explicit integer bucket edges. Bucket b counts values
/// <= edges[b]; the last bucket is unbounded. Only integer counts and an
/// integer sum are kept (integer addition is associative, so merged
/// snapshots of deterministic histograms stay bit-identical across
/// thread counts — a double sum would not).
class Histogram {
 public:
  void Record(int64_t value, int32_t shard = 0) {
    const size_t s = static_cast<size_t>(shard);
    Shard& sh = shards_[s < shards_.size() ? s : 0];
    size_t b = 0;
    while (b < edges_.size() && value > edges_[b]) ++b;
    ++sh.buckets[b];
    ++sh.count;
    sh.sum += value;
  }

  int64_t count() const;
  int64_t sum() const;
  /// Merged count of bucket `b`, b in [0, edges().size()].
  int64_t bucket_count(size_t b) const;
  const std::vector<int64_t>& edges() const { return edges_; }
  void Reset();

  const std::string& name() const { return name_; }
  uint32_t flags() const { return flags_; }

 private:
  friend class MetricsRegistry;

  struct alignas(64) Shard {
    int64_t count = 0;
    int64_t sum = 0;
    std::vector<int64_t> buckets;
  };

  std::string name_;
  uint32_t flags_ = kMetricNone;
  std::vector<int64_t> edges_;
  std::vector<Shard> shards_;
};

/// The per-simulation metric store. Get* registers on first use and
/// returns the existing handle afterwards (flags are OR-merged, so a
/// rebinding caller can add kMetricExecDependent to a live metric).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, uint32_t flags = kMetricNone);
  Gauge* GetGauge(const std::string& name, uint32_t flags = kMetricNone);
  /// `edges` is consulted on first registration only.
  Histogram* GetHistogram(const std::string& name, std::vector<int64_t> edges,
                          uint32_t flags = kMetricNone);

  /// Size every sharded metric (current and future) for up to
  /// `num_shards` concurrent writers. Build-time only.
  void SetNumShards(int32_t num_shards);
  int32_t num_shards() const { return num_shards_; }

  /// Name-sorted (name, merged value) pairs of every counter and gauge —
  /// the flight recorder diffs consecutive calls to derive per-tick
  /// deltas.
  std::vector<std::pair<std::string, int64_t>> Values(
      bool deterministic_only = false) const;

  /// One-line JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names sorted, so two snapshots of identical state are
  /// byte-identical. `deterministic_only` drops every metric flagged
  /// kMetricExecDependent.
  std::string ToJson(bool deterministic_only = false) const;

  /// Zero every metric; handles stay valid.
  void Reset();

 private:
  int32_t num_shards_ = 1;
  // std::map: name-sorted iteration and stable handle addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the exporters in this module and the tracer's args payloads.
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace sgl

#endif  // SGL_OBS_METRICS_H_
