#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace sgl {
namespace obs {

FlightRecorder::FlightRecorder(const MetricsRegistry* metrics,
                               int32_t capacity)
    : metrics_(metrics),
      capacity_(static_cast<size_t>(std::max<int32_t>(1, capacity))) {
  ring_.reserve(capacity_);
}

void FlightRecorder::RecordTick(int64_t tick, int64_t ns, int64_t rows) {
  TickRecord rec;
  rec.tick = tick;
  rec.ns = ns;
  rec.rows = rows;
  // Both snapshots are name-sorted, so a merge walk yields the deltas.
  // New metrics appear mid-run (lazily registered) with prev value 0.
  std::vector<std::pair<std::string, int64_t>> cur = metrics_->Values();
  size_t i = 0;
  size_t j = 0;
  while (i < cur.size()) {
    int64_t before = 0;
    if (j < prev_.size()) {
      const int cmp = prev_[j].first.compare(cur[i].first);
      if (cmp < 0) {
        ++j;
        continue;
      }
      if (cmp == 0) {
        before = prev_[j].second;
        ++j;
      }
    }
    const int64_t delta = cur[i].second - before;
    if (delta != 0) rec.deltas.emplace_back(cur[i].first, delta);
    ++i;
  }
  prev_ = std::move(cur);

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[start_] = std::move(rec);
    start_ = (start_ + 1) % capacity_;
  }
}

std::string FlightRecorder::ToJson(const std::string& reason) const {
  std::ostringstream os;
  os << "{\"reason\":\"" << JsonEscape(reason) << "\",\"ticks\":[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const TickRecord& rec = ring_[(start_ + i) % ring_.size()];
    if (i > 0) os << ",";
    os << "\n{\"tick\":" << rec.tick << ",\"ns\":" << rec.ns
       << ",\"rows\":" << rec.rows << ",\"deltas\":{";
    for (size_t d = 0; d < rec.deltas.size(); ++d) {
      if (d > 0) os << ",";
      os << "\"" << JsonEscape(rec.deltas[d].first)
         << "\":" << rec.deltas[d].second;
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

Status FlightRecorder::Dump(const std::string& path,
                            const std::string& reason) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open flight recorder output file: ",
                            path);
  }
  out << ToJson(reason);
  out.close();
  if (!out.good()) {
    return Status::Internal("failed writing flight recorder output file: ",
                            path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sgl
